package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs/telem"
)

func testWire(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telem.NewRegistry()
	}
	c := NewCoordinator(cfg)
	mux := http.NewServeMux()
	c.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

// TestWorkerPullLoop drives the full wire protocol: jobs enqueued on the
// coordinator are leased over HTTP by a Worker, executed, and their
// payloads delivered back to the enqueuer — including worker-side
// progress documents landing on the OnProgress sink.
func TestWorkerPullLoop(t *testing.T) {
	c, ts := testWire(t, Config{TTL: time.Minute})

	var progressed atomic.Int64
	const jobs = 4
	chans := make([]<-chan Outcome, jobs)
	for i := 0; i < jobs; i++ {
		_, ch, err := c.Enqueue(Job{
			Key:        fmt.Sprintf("key-%d", i),
			Label:      fmt.Sprintf("job %d", i),
			Spec:       json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)),
			OnProgress: func(json.RawMessage) { progressed.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Client: &Client{Base: ts.URL, Worker: "test-worker"},
		Slots:  2,
		Poll:   10 * time.Millisecond,
		Exec: func(ctx context.Context, g *Grant, progress func(any)) ([]byte, error) {
			progress(map[string]any{"stage": "go", "job": g.Job})
			var spec struct {
				N int `json:"n"`
			}
			if err := json.Unmarshal(g.Spec, &spec); err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("result-%d", spec.N)), nil
		},
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	for i, ch := range chans {
		o := waitOutcome(t, ch, 10*time.Second)
		if o.Err != "" {
			t.Fatalf("job %d failed: %s", i, o.Err)
		}
		if string(o.Payload) != fmt.Sprintf("result-%d", i) {
			t.Fatalf("job %d payload = %q", i, o.Payload)
		}
		if o.Worker != "test-worker" {
			t.Fatalf("job %d worker = %q", i, o.Worker)
		}
	}
	if progressed.Load() == 0 {
		t.Fatal("no progress documents forwarded")
	}

	views := c.Workers()
	if len(views) != 1 || views[0].ID != "test-worker" || !views[0].Live {
		t.Fatalf("workers = %+v", views)
	}
	if views[0].Completed != jobs {
		t.Fatalf("worker completed = %d, want %d", views[0].Completed, jobs)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop on context cancel")
	}
}

// TestWorkerHeartbeatOutlivesTTL: a job that takes several TTLs completes
// on the original worker because the heartbeat keeps renewing — the lease
// must not expire under a live worker.
func TestWorkerHeartbeatOutlivesTTL(t *testing.T) {
	c, ts := testWire(t, Config{TTL: 120 * time.Millisecond, SweepEvery: 20 * time.Millisecond})
	_, ch, err := c.Enqueue(Job{Label: "slow", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Client: &Client{Base: ts.URL, Worker: "slowpoke"},
		Poll:   10 * time.Millisecond,
		Exec: func(ctx context.Context, g *Grant, progress func(any)) ([]byte, error) {
			select {
			case <-time.After(500 * time.Millisecond): // ~4 TTLs
				return []byte("slow-ok"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	go w.Run(ctx)

	o := waitOutcome(t, ch, 10*time.Second)
	if o.Err != "" || string(o.Payload) != "slow-ok" {
		t.Fatalf("outcome = %+v", o)
	}
	if o.Requeues != 0 {
		t.Fatalf("live worker's lease expired %d times", o.Requeues)
	}
	st := c.Stats()
	if st.LeaseOps.Renews == 0 {
		t.Fatal("no renews recorded for a multi-TTL job")
	}
	if st.LeaseOps.Expires != 0 {
		t.Fatalf("lease expired under a heartbeating worker: %+v", st.LeaseOps)
	}
}

// TestWorkerAbortsOnLostLease: when the job is abandoned (canceled
// upstream), the worker's renew discovers the lease is gone and the exec
// context is canceled promptly.
func TestWorkerAbortsOnLostLease(t *testing.T) {
	c, ts := testWire(t, Config{TTL: 90 * time.Millisecond, SweepEvery: 15 * time.Millisecond})
	id, _, err := c.Enqueue(Job{Label: "doomed", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	aborted := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Client: &Client{Base: ts.URL, Worker: "victim"},
		Poll:   10 * time.Millisecond,
		Exec: func(ctx context.Context, g *Grant, progress func(any)) ([]byte, error) {
			close(started)
			select {
			case <-ctx.Done():
				close(aborted)
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				return []byte("should never finish"), nil
			}
		},
	}
	go w.Run(ctx)

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started the job")
	}
	c.Abandon(id)
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("worker kept executing after its lease was abandoned")
	}
}

// TestWorkerReportsExecErrors: execution failures travel back as Outcome
// errors, and the worker view counts them as failed.
func TestWorkerReportsExecErrors(t *testing.T) {
	c, ts := testWire(t, Config{TTL: time.Minute})
	_, ch, err := c.Enqueue(Job{Label: "broken", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Client: &Client{Base: ts.URL, Worker: "honest"},
		Poll:   10 * time.Millisecond,
		Exec: func(ctx context.Context, g *Grant, progress func(any)) ([]byte, error) {
			return nil, fmt.Errorf("synthetic failure")
		},
	}
	go w.Run(ctx)

	o := waitOutcome(t, ch, 10*time.Second)
	if o.Err != "synthetic failure" {
		t.Fatalf("outcome err = %q", o.Err)
	}
	views := c.Workers()
	if len(views) != 1 || views[0].Failed != 1 {
		t.Fatalf("workers = %+v", views)
	}
}

// TestHTTPErrorShapes: the lease endpoints answer JSON error bodies with
// the documented status codes (400 on bad bodies, 410 on lost leases,
// 204 on an empty queue).
func TestHTTPErrorShapes(t *testing.T) {
	_, ts := testWire(t, Config{TTL: time.Minute})

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if code, _ := post("/v1/leases", `{"worker":"w"}`); code != http.StatusNoContent {
		t.Fatalf("empty-queue lease status = %d, want 204", code)
	}
	if code, m := post("/v1/leases", `{"worker":`); code != http.StatusBadRequest || m["error"] == "" {
		t.Fatalf("bad body: status %d body %v, want 400 with error", code, m)
	}
	if code, m := post("/v1/leases/nope/renew", `{"worker":"w"}`); code != http.StatusGone || m["error"] == "" {
		t.Fatalf("unknown lease renew: status %d body %v, want 410 with error", code, m)
	}
	if code, m := post("/v1/leases/nope/complete", `{"worker":"w"}`); code != http.StatusGone || m["error"] == "" {
		t.Fatalf("unknown lease complete: status %d body %v, want 410 with error", code, m)
	}
}
