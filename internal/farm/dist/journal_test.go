package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestJournalReplayAfterCrash is the crash-recovery contract: a journal
// abandoned mid-queue (no Close, like a killed coordinator) reopens with
// exactly the unsettled jobs pending — settled ones never replay, and
// replaying then settling leaves nothing behind for a third incarnation.
func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	j1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		spec := json.RawMessage(fmt.Sprintf(`{"game":"doom3","n":%d}`, i))
		id, err := j1.Enqueue(fmt.Sprintf("key-%d", i), fmt.Sprintf("job %d", i), spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := j1.Terminal(ids[0], OpDone); err != nil {
		t.Fatal(err)
	}
	if err := j1.Terminal(ids[3], OpFailed); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. The file handle stays open in j1 but a restarted
	// process reads the same bytes.

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pend := j2.Pending()
	if len(pend) != 3 {
		t.Fatalf("pending after restart = %d, want 3 (%+v)", len(pend), pend)
	}
	want := []string{ids[1], ids[2], ids[4]}
	for i, rec := range pend {
		if rec.ID != want[i] {
			t.Errorf("pending[%d] = %s, want %s", i, rec.ID, want[i])
		}
		if rec.Op != OpEnqueue || len(rec.Spec) == 0 || rec.Key == "" {
			t.Errorf("pending[%d] incomplete: %+v", i, rec)
		}
	}

	// Settle the survivors exactly once; the next incarnation replays none.
	for _, rec := range pend {
		if err := j2.Terminal(rec.ID, OpDone); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()
	j3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := j3.Len(); n != 0 {
		t.Fatalf("pending after full settle = %d, want 0", n)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// open discards it (and only it) and later appends stay parseable.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := j1.Enqueue("k", "job", json.RawMessage(`{"a":1}`))
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()

	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"pim-render/journal/v1","seq":2,"op":"done","id":"` + id); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := j2.Len(); n != 1 {
		t.Fatalf("pending with torn terminal = %d, want 1 (torn line must not settle)", n)
	}
	// The torn tail was truncated: a fresh append must parse on reopen.
	if err := j2.Terminal(id, OpDone); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := j3.Len(); n != 0 {
		t.Fatalf("pending after post-truncation terminal = %d, want 0", n)
	}
}

// TestJournalCompaction: settling far more jobs than stay pending
// triggers the atomic rewrite, which keeps only pending records and
// survives a reopen.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := j.Enqueue("keep", "keeper", json.RawMessage(`{"keep":true}`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < compactMinTerminal+8; i++ {
		id, err := j.Enqueue("k", "churn", json.RawMessage(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Terminal(id, OpDone); err != nil {
			t.Fatal(err)
		}
	}
	j.mu.Lock()
	compacts, settled := j.compacts, j.settled
	j.mu.Unlock()
	if compacts == 0 {
		t.Fatal("no compaction despite heavy churn")
	}
	if settled >= compactMinTerminal {
		t.Fatalf("settled count %d not reset by compaction", settled)
	}
	fi, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	// A couple of live lines at most; the churn was hundreds of records.
	if fi.Size() > 4096 {
		t.Fatalf("journal still %d bytes after compaction", fi.Size())
	}
	j.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pend := j2.Pending()
	if len(pend) != 1 || pend[0].ID != keep {
		t.Fatalf("pending after compaction+reopen = %+v, want just %s", pend, keep)
	}
}

// TestJournalForeignRecordsIgnored: records from a future schema replay
// as no-ops instead of failing the open.
func TestJournalForeignRecordsIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	lines := `{"schema":"pim-render/journal/v2","seq":1,"op":"enqueue","id":"future"}
{"schema":"pim-render/journal/v1","seq":2,"op":"enqueue","id":"j-00000002","key":"k","spec":{}}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	pend := j.Pending()
	if len(pend) != 1 || pend[0].ID != "j-00000002" {
		t.Fatalf("pending = %+v, want only the v1 record", pend)
	}
}
