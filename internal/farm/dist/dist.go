// Package dist splits the render farm across processes: a coordinator
// owns the job queue and hands work to pull-based workers over an HTTP
// lease protocol (POST /v1/leases grants a job with a TTL; periodic
// renews keep it; an expired lease requeues the job for another worker),
// and a durable append-only journal lets a restarted coordinator replay
// queued jobs instead of losing them.
//
// Like internal/farm, the package is independent of the simulator: a Job
// carries an opaque JSON spec and workers return an opaque byte payload,
// so cmd/pimfarm supplies the encode/execute/decode glue (specs are
// pim-render/spec/v1 documents; payloads are pim-render/result/v1
// documents) without
// an import cycle. The coordinator plugs in as the body of a farm Task's
// Run closure: the farm keeps job lifecycle, SSE event streams, retry
// budget, singleflight dedup, and the memory/store cache tiers; dist adds
// only the process split and the wire protocol. Because workers execute
// through core.RunCachedContext against a shared store directory, a
// result computed on any node is a warm hit everywhere.
package dist

import (
	"encoding/json"
	"time"

	"repro/internal/obs/dtrace"
)

// Job is one unit of distributed work handed to the coordinator.
type Job struct {
	// Key is the dedup/cache identity (core.CacheKey for render jobs).
	// Informational on this layer — the farm above dedups on it — but
	// carried to workers so their own caches key identically.
	Key string
	// Label names the job in grants and worker logs.
	Label string
	// Class is the admission priority-class label: "interactive" jobs
	// are leased ahead of queued batch work; any other value (including
	// empty) queues at batch priority.
	Class string
	// Origin is the sanitized request ID the submission arrived with;
	// grants carry it so worker log lines correlate end to end.
	Origin string
	// Trace is the job's traceparent context ("" when unsampled); grants
	// carry it and workers record spans against it.
	Trace string
	// Spec is the opaque job description a worker's Exec understands
	// (cmd/pimfarm marshals the canonical pim-render/spec/v1 document
	// here).
	Spec json.RawMessage
	// OnProgress, when non-nil, receives progress documents forwarded by
	// the executing worker (raw JSON, published verbatim onto the farm
	// job's SSE stream). Called from HTTP handler goroutines; must be
	// safe for concurrent use and must not block.
	OnProgress func(json.RawMessage)
}

// Outcome resolves one dispatched job.
type Outcome struct {
	// Payload is the worker-produced result document (nil on error).
	Payload []byte
	// Err is the worker-reported execution error ("" on success).
	Err string
	// Worker identifies the worker that resolved the job.
	Worker string
	// Requeues counts how many expired leases the job survived before
	// this outcome.
	Requeues int
	// Trace is the worker's half of the job's distributed trace (nil
	// when the job was unsampled or the worker predates tracing).
	Trace *dtrace.WorkerReport
	// Granted/Completed are the resolving lease's coordinator-clock
	// grant and completion-receipt instants (t0 and t3 of the skew
	// estimate); zero on failure paths that never held a lease.
	Granted   time.Time
	Completed time.Time
}

// Wire types for the lease protocol. All bodies are JSON; error responses
// everywhere are {"error": "..."} with a meaningful status code, matching
// the rest of the pimfarm API.

// LeaseRequest is the POST /v1/leases body: a worker asking for work.
type LeaseRequest struct {
	// Worker is the caller's self-chosen stable identity.
	Worker string `json:"worker"`
}

// Grant is a granted lease: one job plus the TTL the worker must renew
// within. A 204 response means the queue is empty.
type Grant struct {
	Lease string          `json:"lease"`
	Job   string          `json:"job"`
	Key   string          `json:"key,omitempty"`
	Label string          `json:"label,omitempty"`
	Class string          `json:"class,omitempty"`
	Spec  json.RawMessage `json:"spec"`
	// TTLMillis is the lease duration; the worker should renew at a
	// comfortable fraction of it (the bundled Worker renews at TTL/3).
	TTLMillis int64 `json:"ttl_ms"`
	// Origin is the submission's sanitized request ID, for worker logs.
	Origin string `json:"origin,omitempty"`
	// Trace is the job's traceparent context ("" when unsampled).
	Trace string `json:"trace,omitempty"`
	// GrantUnixUS is the coordinator-clock grant instant (t0 of the
	// clock-skew estimate), Unix microseconds.
	GrantUnixUS int64 `json:"grant_unix_us,omitempty"`
}

// TTL returns the grant's lease duration.
func (g *Grant) TTL() time.Duration { return time.Duration(g.TTLMillis) * time.Millisecond }

// RenewRequest is the POST /v1/leases/{id}/renew body (heartbeat).
type RenewRequest struct {
	Worker string `json:"worker"`
}

// ProgressRequest is the POST /v1/leases/{id}/progress body: one progress
// document to forward onto the job's event stream.
type ProgressRequest struct {
	Worker string          `json:"worker"`
	Data   json.RawMessage `json:"data"`
}

// CompleteRequest is the POST /v1/leases/{id}/complete body: the job's
// result payload (base64 over JSON) or execution error.
type CompleteRequest struct {
	Worker  string `json:"worker"`
	Payload []byte `json:"payload,omitempty"`
	Error   string `json:"error,omitempty"`
	// Trace is the worker's span report for the job: its grant-receive
	// and send stamps (worker clock) plus the spans it recorded. Nil
	// when the grant carried no sampled context.
	Trace *dtrace.WorkerReport `json:"trace,omitempty"`
}

// WorkerView is one worker's liveness record (the GET /v1/workers body
// carries a list of these).
type WorkerView struct {
	ID        string    `json:"id"`
	Live      bool      `json:"live"`
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	// ActiveLeases is how many leases the worker currently holds.
	ActiveLeases int `json:"active_leases"`
	// Completed / Failed count jobs the worker resolved; Expired counts
	// leases the coordinator reclaimed from it.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Expired   uint64 `json:"expired"`
}

// LeaseOps is the cumulative lease-operation counters (mirrored into the
// pim_farm_lease_ops_total metric).
type LeaseOps struct {
	Grants   uint64 `json:"grants"`
	Renews   uint64 `json:"renews"`
	Expires  uint64 `json:"expires"`
	Requeues uint64 `json:"requeues"`
}

// Stats is a point-in-time snapshot of coordinator state (the "workers"
// block in pimfarm's /varz).
type Stats struct {
	Queued int `json:"queued"`
	// QueuedByClass splits Queued into the coordinator's two lease
	// queues ("interactive" is always drained first).
	QueuedByClass map[string]int `json:"queued_by_class,omitempty"`
	Leased        int            `json:"leased"`
	WorkersLive   int            `json:"workers_live"`
	LeaseOps      LeaseOps       `json:"lease_ops"`
	Workers       []WorkerView   `json:"workers,omitempty"`
}
