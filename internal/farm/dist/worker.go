package dist

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/obs/dtrace"
	"repro/internal/obs/slogx"
)

// DefaultPoll is the idle poll interval between lease attempts when the
// coordinator reports an empty queue or is unreachable.
const DefaultPoll = 500 * time.Millisecond

// progressMinInterval throttles progress forwarding: simulation progress
// callbacks fire per tile group, far faster than the coordinator needs.
const progressMinInterval = 100 * time.Millisecond

// ExecFunc executes one granted job and returns its result payload.
// ctx is canceled when the lease is lost (expired or the job was
// canceled upstream) — execution should stop promptly. progress may be
// called freely; the worker throttles and forwards it to the
// coordinator.
type ExecFunc func(ctx context.Context, g *Grant, progress func(any)) ([]byte, error)

// Worker pulls leases from a coordinator and executes them. One Worker
// runs Slots concurrent lease loops; each loop leases, heartbeats at a
// third of the TTL while executing, and reports completion. cmd/pimfarm
// runs one Worker per `pimfarm worker` process, with an ExecFunc that
// decodes the job spec and simulates through core.RunCachedContext — so
// pointing workers at a shared -store directory makes every node's
// results warm hits everywhere.
type Worker struct {
	// Client speaks to the coordinator; required.
	Client *Client
	// Exec executes granted jobs; required.
	Exec ExecFunc
	// Slots is the number of concurrent leases; <= 0 selects 1.
	Slots int
	// Poll is the idle/retry interval; <= 0 selects DefaultPoll.
	Poll time.Duration
	// Log receives worker lifecycle lines; nil discards.
	Log *slog.Logger
}

// Run pulls and executes jobs until ctx is canceled. It returns ctx's
// error; a dead coordinator is retried at the poll interval, never fatal
// (the farm may restart while workers stay up — journal replay refills
// the queue they draw from).
func (w *Worker) Run(ctx context.Context) error {
	slots := w.Slots
	if slots <= 0 {
		slots = 1
	}
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	log := w.Log
	if log == nil {
		log = slogx.Discard()
	}
	var wg sync.WaitGroup
	wg.Add(slots)
	for i := 0; i < slots; i++ {
		go func(slot int) {
			defer wg.Done()
			w.loop(ctx, slot, poll, log)
		}(i)
	}
	wg.Wait()
	return ctx.Err()
}

// loop is one lease slot: lease, execute, complete, repeat.
func (w *Worker) loop(ctx context.Context, slot int, poll time.Duration, log *slog.Logger) {
	for ctx.Err() == nil {
		g, err := w.Client.Lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Warn("lease request failed", "slot", slot, "err", err.Error())
			sleep(ctx, poll)
			continue
		}
		if g == nil {
			sleep(ctx, poll)
			continue
		}
		log.Info("leased", "slot", slot, "lease", g.Lease, "job", g.Job, "label", g.Label)
		w.runLease(ctx, g, log)
	}
}

// runLease executes one grant under a heartbeat. The lease is renewed at
// TTL/3; a renew answered ErrGone cancels the execution context (the
// coordinator gave the job to someone else or it was canceled), and the
// result — if any — is not reported.
//
// When the grant carries a sampled trace context, a span recorder rides
// the execution context (dtrace.RecorderFrom) and the recorded spans —
// plus this worker's grant-receive and send stamps, the skew anchors —
// ship back inside the completion request. The per-lease logger carries
// trace_id/request_id so worker log lines correlate end to end.
func (w *Worker) runLease(ctx context.Context, g *Grant, log *slog.Logger) {
	grantRecv := time.Now() // t1 of the clock-skew estimate
	var rec *dtrace.Recorder
	if tc, ok := dtrace.Parse(g.Trace); ok && tc.Sampled {
		rec = dtrace.NewRecorder(tc, 0)
		log = log.With("trace_id", tc.TraceID)
	}
	if g.Origin != "" {
		log = log.With("request_id", g.Origin)
	}
	execCtx, cancelExec := context.WithCancel(ctx)
	defer cancelExec()
	execCtx = slogx.WithLogger(dtrace.WithRecorder(execCtx, rec), log)

	var lost bool
	var mu sync.Mutex
	heartbeatDone := make(chan struct{})
	interval := g.TTL() / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(heartbeatDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-execCtx.Done():
				return
			case <-t.C:
				if err := w.Client.Renew(ctx, g.Lease); err != nil {
					if IsGone(err) {
						mu.Lock()
						lost = true
						mu.Unlock()
						log.Warn("lease lost", "lease", g.Lease, "job", g.Job)
						cancelExec()
						return
					}
					// Transient coordinator trouble: keep heartbeating —
					// the TTL gives several attempts before expiry.
					log.Warn("renew failed", "lease", g.Lease, "err", err.Error())
				}
			}
		}
	}()

	payload, execErr := w.Exec(execCtx, g, w.progressFunc(ctx, g))
	cancelExec()
	<-heartbeatDone

	mu.Lock()
	wasLost := lost
	mu.Unlock()
	if wasLost {
		return // coordinator moved on; drop the result
	}
	errStr := ""
	if execErr != nil {
		errStr = execErr.Error()
	}
	var report *dtrace.WorkerReport
	if rec != nil {
		report = &dtrace.WorkerReport{
			Context:     g.Trace,
			Worker:      w.Client.Worker,
			GrantRecvUS: grantRecv.UnixMicro(),
			SendUS:      time.Now().UnixMicro(), // t2
			Spans:       rec.Spans(),
			Dropped:     rec.Dropped(),
		}
	}
	// Report completion with the parent context (exec cancellation must
	// not block the report); a few retries smooth over transient network
	// trouble, and ErrGone means the expiry beat us — nothing to do.
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = w.Client.Complete(ctx, g.Lease, payload, errStr, report); err == nil || IsGone(err) || ctx.Err() != nil {
			break
		}
		sleep(ctx, time.Duration(attempt+1)*200*time.Millisecond)
	}
	switch {
	case err == nil:
		log.Info("completed", "lease", g.Lease, "job", g.Job, "error", errStr)
	case IsGone(err):
		log.Warn("completion discarded (lease expired)", "lease", g.Lease, "job", g.Job)
	default:
		log.Error("completion report failed", "lease", g.Lease, "err", err.Error())
	}
}

// progressFunc builds the throttled progress forwarder for one lease.
func (w *Worker) progressFunc(ctx context.Context, g *Grant) func(any) {
	var mu sync.Mutex
	var last time.Time
	return func(data any) {
		mu.Lock()
		now := time.Now()
		if now.Sub(last) < progressMinInterval {
			mu.Unlock()
			return
		}
		last = now
		mu.Unlock()
		// Best-effort: progress is cosmetic and must never stall the
		// simulation; a lost event only thins the SSE stream.
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_ = w.Client.Progress(pctx, g.Lease, data)
		cancel()
	}
}

// sleep waits d or until ctx is canceled.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// String identifies the worker in logs.
func (w *Worker) String() string {
	if w.Client == nil {
		return "dist.Worker"
	}
	return fmt.Sprintf("dist.Worker(%s → %s)", w.Client.Worker, w.Client.Base)
}
