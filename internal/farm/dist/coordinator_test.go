package dist

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/telem"
)

func testCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telem.NewRegistry()
	}
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	return c
}

func waitOutcome(t *testing.T, ch <-chan Outcome, within time.Duration) Outcome {
	t.Helper()
	select {
	case o := <-ch:
		return o
	case <-time.After(within):
		t.Fatal("no outcome within deadline")
		return Outcome{}
	}
}

// TestLeaseCompleteRoundTrip: enqueue → lease → renew → complete delivers
// the worker's payload to the enqueuer and retires the lease.
func TestLeaseCompleteRoundTrip(t *testing.T) {
	c := testCoordinator(t, Config{TTL: time.Minute})
	id, ch, err := c.Enqueue(Job{Key: "k1", Label: "one", Spec: json.RawMessage(`{"x":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := c.Lease("w1")
	if !ok {
		t.Fatal("no grant for queued job")
	}
	if g.Job != id || g.Key != "k1" || string(g.Spec) != `{"x":1}` {
		t.Fatalf("grant = %+v", g)
	}
	if _, ok := c.Lease("w2"); ok {
		t.Fatal("second lease granted for an empty queue")
	}
	if err := c.Renew(g.Lease, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(g.Lease, "w1", []byte("payload"), "", nil); err != nil {
		t.Fatal(err)
	}
	o := waitOutcome(t, ch, time.Second)
	if string(o.Payload) != "payload" || o.Err != "" || o.Worker != "w1" || o.Requeues != 0 {
		t.Fatalf("outcome = %+v", o)
	}
	// The lease is gone: late renew/complete are rejected.
	if err := c.Renew(g.Lease, "w1"); err != ErrGone {
		t.Fatalf("renew after complete = %v, want ErrGone", err)
	}
	if err := c.Complete(g.Lease, "w1", nil, "", nil); err != ErrGone {
		t.Fatalf("double complete = %v, want ErrGone", err)
	}
}

// TestExpiredLeaseRequeues is the stalled-worker contract: a worker that
// leases and never renews loses the job on TTL expiry; the job requeues
// with its requeue count bumped and a second worker completes it. The
// expiry and requeue land in the lease-op counters, and a late completion
// from the stalled worker is rejected.
func TestExpiredLeaseRequeues(t *testing.T) {
	c := testCoordinator(t, Config{TTL: 60 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	_, ch, err := c.Enqueue(Job{Key: "k", Label: "stall-me", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	g1, ok := c.Lease("stalled")
	if !ok {
		t.Fatal("no grant")
	}

	// The stalled worker never renews; the sweeper must reclaim the lease.
	deadline := time.Now().Add(5 * time.Second)
	var g2 *Grant
	for time.Now().Before(deadline) {
		if g, ok := c.Lease("healthy"); ok {
			g2 = g
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g2 == nil {
		t.Fatal("expired lease never requeued")
	}
	if g2.Job != g1.Job {
		t.Fatalf("requeued job %s != original %s", g2.Job, g1.Job)
	}

	// The original lease is dead even though its worker wakes up late.
	if err := c.Complete(g1.Lease, "stalled", []byte("zombie"), "", nil); err != ErrGone {
		t.Fatalf("stalled worker completion = %v, want ErrGone", err)
	}

	if err := c.Complete(g2.Lease, "healthy", []byte("real"), "", nil); err != nil {
		t.Fatal(err)
	}
	o := waitOutcome(t, ch, time.Second)
	if string(o.Payload) != "real" || o.Worker != "healthy" {
		t.Fatalf("outcome = %+v", o)
	}
	if o.Requeues != 1 {
		t.Fatalf("outcome requeues = %d, want 1", o.Requeues)
	}

	st := c.Stats()
	if st.LeaseOps.Grants != 2 || st.LeaseOps.Expires != 1 || st.LeaseOps.Requeues != 1 {
		t.Fatalf("lease ops = %+v", st.LeaseOps)
	}
	var stalled *WorkerView
	for i := range st.Workers {
		if st.Workers[i].ID == "stalled" {
			stalled = &st.Workers[i]
		}
	}
	if stalled == nil || stalled.Expired != 1 {
		t.Fatalf("stalled worker view = %+v", stalled)
	}
}

// TestMaxRequeuesFails: a job whose leases keep expiring eventually
// resolves as failed instead of looping forever.
func TestMaxRequeuesFails(t *testing.T) {
	c := testCoordinator(t, Config{
		TTL: 20 * time.Millisecond, SweepEvery: 5 * time.Millisecond, MaxRequeues: 2,
	})
	_, ch, err := c.Enqueue(Job{Label: "poison", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	// Keep leasing and stalling until the coordinator gives up.
	go func() {
		for {
			select {
			case <-c.stop:
				return
			default:
			}
			c.Lease("black-hole")
			time.Sleep(5 * time.Millisecond)
		}
	}()
	o := waitOutcome(t, ch, 10*time.Second)
	if o.Err == "" {
		t.Fatalf("poison job resolved successfully: %+v", o)
	}
	if o.Requeues != 2 {
		t.Fatalf("outcome requeues = %d, want MaxRequeues=2", o.Requeues)
	}
}

// TestAbandonInvalidatesLease: canceling the dispatch side kills the
// lease, so the worker's renew learns the work is dead; an abandoned
// queued job is never granted.
func TestAbandonInvalidatesLease(t *testing.T) {
	c := testCoordinator(t, Config{TTL: time.Minute})
	idA, _, err := c.Enqueue(Job{Label: "leased-then-abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := c.Lease("w")
	if !ok || g.Job != idA {
		t.Fatalf("grant = %+v, %v", g, ok)
	}
	c.Abandon(idA)
	if err := c.Renew(g.Lease, "w"); err != ErrGone {
		t.Fatalf("renew after abandon = %v, want ErrGone", err)
	}

	idB, _, err := c.Enqueue(Job{Label: "abandoned-while-queued"})
	if err != nil {
		t.Fatal(err)
	}
	c.Abandon(idB)
	if g, ok := c.Lease("w"); ok {
		t.Fatalf("abandoned queued job was granted: %+v", g)
	}
}

// TestProgressForwarding: worker progress documents reach the job's
// OnProgress sink verbatim and extend the lease like a renew.
func TestProgressForwarding(t *testing.T) {
	c := testCoordinator(t, Config{TTL: time.Minute})
	var mu sync.Mutex
	var got []string
	_, _, err := c.Enqueue(Job{
		Label: "chatty",
		OnProgress: func(raw json.RawMessage) {
			mu.Lock()
			got = append(got, string(raw))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := c.Lease("w")
	if !ok {
		t.Fatal("no grant")
	}
	if err := c.Progress(g.Lease, "w", json.RawMessage(`{"pct":50}`)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != `{"pct":50}` {
		t.Fatalf("forwarded progress = %v", got)
	}
}

// TestCloseResolvesWaiters: coordinator shutdown fails outstanding
// dispatches instead of leaving them blocked.
func TestCloseResolvesWaiters(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute, Metrics: telem.NewRegistry()})
	_, ch, err := c.Enqueue(Job{Label: "stranded"})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	o := waitOutcome(t, ch, time.Second)
	if o.Err == "" {
		t.Fatal("shutdown outcome carried no error")
	}
	if _, _, err := c.Enqueue(Job{}); err != ErrClosed {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
}

// TestClassOrderedLeasing: interactive jobs are leased ahead of batch work
// that was queued earlier, batch keeps FIFO order among itself, and the
// per-class queue split shows up in Stats.
func TestClassOrderedLeasing(t *testing.T) {
	c := testCoordinator(t, Config{TTL: time.Minute})
	b1, _, _ := c.Enqueue(Job{Label: "batch-1", Class: "batch", Spec: json.RawMessage(`{}`)})
	b2, _, _ := c.Enqueue(Job{Label: "batch-2", Spec: json.RawMessage(`{}`)}) // empty class queues as batch
	i1, _, _ := c.Enqueue(Job{Label: "inter-1", Class: "interactive", Spec: json.RawMessage(`{}`)})
	i2, _, _ := c.Enqueue(Job{Label: "inter-2", Class: "interactive", Spec: json.RawMessage(`{}`)})

	st := c.Stats()
	if st.Queued != 4 || st.QueuedByClass["interactive"] != 2 || st.QueuedByClass["batch"] != 2 {
		t.Fatalf("stats = %+v", st)
	}

	var order []string
	for k := 0; k < 4; k++ {
		g, ok := c.Lease("w1")
		if !ok {
			t.Fatalf("lease %d: no grant", k)
		}
		order = append(order, g.Job)
		if k < 2 && g.Class != "interactive" {
			t.Fatalf("lease %d granted class %q, want interactive first", k, g.Class)
		}
	}
	want := []string{i1, i2, b1, b2}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("lease order = %v, want %v", order, want)
		}
	}
}
