package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs/dtrace"
)

// Routes registers the coordinator's lease-protocol endpoints onto mux.
// cmd/pimfarm mounts them into its main mux, so they ride the same
// X-Request-ID / structured-log middleware as the job API; error
// responses are JSON {"error": ...} bodies with meaningful status codes
// either way.
//
//	POST /v1/leases               lease one job (204 when the queue is empty)
//	POST /v1/leases/{id}/renew    heartbeat; extends the TTL
//	POST /v1/leases/{id}/progress forward a progress document to the job's stream
//	POST /v1/leases/{id}/complete deliver the result payload or execution error
//	GET  /v1/workers              worker liveness introspection
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/leases", c.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/leases/{id}/progress", c.handleProgress)
	mux.HandleFunc("POST /v1/leases/{id}/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	g, ok := c.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	jsonBody(w, http.StatusOK, g)
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := decodeBody(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Renew(r.PathValue("id"), req.Worker); err != nil {
		jsonError(w, http.StatusGone, err)
		return
	}
	jsonBody(w, http.StatusOK, map[string]int64{"ttl_ms": c.cfg.TTL.Milliseconds()})
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if err := decodeBody(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Progress(r.PathValue("id"), req.Worker, req.Data); err != nil {
		jsonError(w, http.StatusGone, err)
		return
	}
	jsonBody(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decodeBody(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Complete(r.PathValue("id"), req.Worker, req.Payload, req.Error, req.Trace); err != nil {
		jsonError(w, http.StatusGone, err)
		return
	}
	jsonBody(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	jsonBody(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func jsonBody(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func jsonError(w http.ResponseWriter, status int, err error) {
	jsonBody(w, status, map[string]string{"error": err.Error()})
}

// Client is the worker side of the lease protocol: a thin HTTP client
// against a coordinator's base URL. The zero HTTP client is replaced
// with one carrying a sane timeout.
type Client struct {
	// Base is the coordinator's base URL (e.g. http://farm:8080).
	Base string
	// Worker is this client's stable worker identity.
	Worker string
	// HTTP overrides the transport; nil selects a 30s-timeout client.
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// post sends body as JSON and decodes the response into out (when
// non-nil). A 410 maps to ErrGone; other non-2xx statuses surface the
// server's JSON error body.
func (c *Client) post(ctx context.Context, path string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, fmt.Errorf("dist: marshal %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(raw))
	if err != nil {
		return 0, fmt.Errorf("dist: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return 0, fmt.Errorf("dist: %s: %w", path, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return resp.StatusCode, nil
	case resp.StatusCode == http.StatusGone:
		return resp.StatusCode, fmt.Errorf("%w (%s)", ErrGone, readAPIError(resp.Body))
	case resp.StatusCode < 200 || resp.StatusCode >= 300:
		return resp.StatusCode, fmt.Errorf("dist: %s: status %d: %s",
			path, resp.StatusCode, readAPIError(resp.Body))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("dist: decode %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// readAPIError extracts the server's {"error": ...} message, falling back
// to the raw body.
func readAPIError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return body.Error
	}
	return string(bytes.TrimSpace(raw))
}

// Lease asks the coordinator for one job. A nil grant with nil error
// means the queue is empty (poll again later).
func (c *Client) Lease(ctx context.Context) (*Grant, error) {
	var g Grant
	status, err := c.post(ctx, "/v1/leases", LeaseRequest{Worker: c.Worker}, &g)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &g, nil
}

// Renew heartbeats a held lease. ErrGone (wrapped) means the lease was
// lost and the work must be dropped.
func (c *Client) Renew(ctx context.Context, leaseID string) error {
	_, err := c.post(ctx, "/v1/leases/"+leaseID+"/renew", RenewRequest{Worker: c.Worker}, nil)
	return err
}

// Progress forwards one progress document for a held lease.
func (c *Client) Progress(ctx context.Context, leaseID string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("dist: marshal progress: %w", err)
	}
	_, err = c.post(ctx, "/v1/leases/"+leaseID+"/progress",
		ProgressRequest{Worker: c.Worker, Data: raw}, nil)
	return err
}

// Complete delivers the result payload (or execution error) for a held
// lease, along with the worker's trace report when the grant carried a
// sampled context.
func (c *Client) Complete(ctx context.Context, leaseID string, payload []byte, execErr string, report *dtrace.WorkerReport) error {
	_, err := c.post(ctx, "/v1/leases/"+leaseID+"/complete",
		CompleteRequest{Worker: c.Worker, Payload: payload, Error: execErr, Trace: report}, nil)
	return err
}

// IsGone reports whether err is (or wraps) a lost-lease rejection.
func IsGone(err error) bool { return errors.Is(err, ErrGone) }
