package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs/telem"
)

// BenchmarkLeaseRoundTrip measures pure wire-protocol overhead per job —
// enqueue, HTTP lease, complete, outcome delivery — with a no-op
// executor and 2 workers × 2 slots. This is the floor a distributed job
// pays over an in-process one; real jobs amortize it over a full frame
// simulation.
func BenchmarkLeaseRoundTrip(b *testing.B) {
	c := NewCoordinator(Config{TTL: time.Minute, Metrics: telem.NewRegistry()})
	defer c.Close()
	mux := http.NewServeMux()
	c.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := &Worker{
			Client: &Client{Base: ts.URL, Worker: fmt.Sprintf("bench-%d", i)},
			Slots:  2,
			Poll:   time.Millisecond,
			Exec: func(ctx context.Context, g *Grant, progress func(any)) ([]byte, error) {
				return []byte("ok"), nil
			},
		}
		go w.Run(ctx)
	}

	b.ResetTimer()
	chans := make([]<-chan Outcome, b.N)
	for i := 0; i < b.N; i++ {
		_, ch, err := c.Enqueue(Job{
			Key:  fmt.Sprintf("bench-key-%d", i),
			Spec: json.RawMessage(`{}`),
		})
		if err != nil {
			b.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		if o := <-ch; o.Err != "" {
			b.Fatalf("job %d: %s", i, o.Err)
		}
	}
}
