package farm_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/farm"
)

// TestFarmSweepMatchesSerial is the determinism contract behind the
// parallel sweeps: many concurrent duplicate + distinct submissions of
// real simulations must (a) execute each distinct (workload, options) cell
// exactly once and (b) produce results identical to a serial core.Run of
// the same cell. Run under -race this also vets the simulator's
// thread-safety for concurrent independent runs.
func TestFarmSweepMatchesSerial(t *testing.T) {
	wls := core.MiniSet()
	opts := core.Options{Design: config.Baseline}

	// Serial reference, fresh runs outside any cache.
	serial := make([]*core.Result, len(wls))
	for i, wl := range wls {
		r, err := core.Run(wl, opts)
		if err != nil {
			t.Fatalf("serial %s: %v", wl.Name(), err)
		}
		serial[i] = r
	}

	f := farm.New(farm.Config{Workers: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	const dupsPerCell = 4
	execs := make([]atomic.Int32, len(wls))
	var wg sync.WaitGroup
	jobs := make([]*farm.Job, len(wls)*dupsPerCell)
	errs := make([]error, len(jobs))
	for d := 0; d < dupsPerCell; d++ {
		for i, wl := range wls {
			idx := d*len(wls) + i
			i, wl := i, wl
			wg.Add(1)
			go func() {
				defer wg.Done()
				jobs[idx], errs[idx] = f.Submit(context.Background(), farm.Task{
					Key:   core.CacheKey(wl, opts),
					Label: fmt.Sprintf("%s/baseline", wl.Name()),
					Run: func(context.Context) (any, error) {
						execs[i].Add(1)
						return core.Run(wl, opts)
					},
				})
			}()
		}
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", idx, err)
		}
	}

	for idx, j := range jobs {
		v, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d (%s): %v", idx, j.Label(), err)
		}
		got := v.(*core.Result)
		want := serial[idx%len(wls)]
		assertResultsEqual(t, j.Label(), got, want)
	}
	for i, wl := range wls {
		if n := execs[i].Load(); n != 1 {
			t.Errorf("%s simulated %d times across %d duplicate submissions, want exactly 1",
				wl.Name(), n, dupsPerCell)
		}
	}
}

// assertResultsEqual compares every externally observable measurement of
// two runs: cycle count, traffic, energy, and the rendered frame itself.
func assertResultsEqual(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if got.Cycles() != want.Cycles() {
		t.Errorf("%s: cycles %d != serial %d", label, got.Cycles(), want.Cycles())
	}
	if got.TextureTraffic() != want.TextureTraffic() {
		t.Errorf("%s: texture traffic %d != serial %d", label, got.TextureTraffic(), want.TextureTraffic())
	}
	if got.TotalTraffic() != want.TotalTraffic() {
		t.Errorf("%s: total traffic %d != serial %d", label, got.TotalTraffic(), want.TotalTraffic())
	}
	if got.Energy.Total() != want.Energy.Total() {
		t.Errorf("%s: energy %f != serial %f", label, got.Energy.Total(), want.Energy.Total())
	}
	if len(got.Image) != len(want.Image) {
		t.Errorf("%s: image size %d != serial %d", label, len(got.Image), len(want.Image))
		return
	}
	for p := range got.Image {
		if got.Image[p] != want.Image[p] {
			t.Errorf("%s: frame differs from serial render at pixel %d", label, p)
			return
		}
	}
}

// TestRunCachedSingleFlight hammers core.RunCached with concurrent
// duplicate calls: every caller must get the same *Result pointer (one
// simulation, shared by all) with no data race.
func TestRunCachedSingleFlight(t *testing.T) {
	core.ClearRunCache()
	wl := core.MiniSet()[0]
	opts := core.Options{Design: config.Baseline}

	const callers = 12
	results := make([]*core.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := core.RunCached(wl, opts)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *Result: duplicate in-flight simulation happened", i)
		}
	}
}
