package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs/telem"
)

// newTestController builds a controller on a private registry so tests
// never collide through telem.Default().
func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telem.NewRegistry()
	}
	return New(cfg)
}

func openTenant(name string) *Tenant {
	return &Tenant{Name: name, Rate: Unlimited, MaxInFlight: Unlimited}
}

// waitForWaiting polls until the class's admission queue holds n live
// waiters.
func waitForWaiting(t *testing.T, c *Controller, class Class, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Queues[class.String()].Waiting == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("class %s never reached %d waiters (stats: %+v)", class, n, c.Stats())
}

// TestAdmitImmediate: free slots admit without waiting.
func TestAdmitImmediate(t *testing.T) {
	c := newTestController(t, Config{Slots: 2})
	tk, err := c.Admit(context.Background(), openTenant("a"), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Wait() != 0 {
		t.Errorf("immediate admission waited %v", tk.Wait())
	}
	if got := c.Stats().FreeSlots; got != 1 {
		t.Errorf("free slots = %d, want 1", got)
	}
	tk.Release()
	tk.Release() // idempotent
	if got := c.Stats().FreeSlots; got != 2 {
		t.Errorf("free slots after release = %d, want 2", got)
	}
}

// TestClassOrdering is the tentpole invariant: a later-arriving
// interactive submission is granted the next slot ahead of an
// earlier-queued batch submission.
func TestClassOrdering(t *testing.T) {
	c := newTestController(t, Config{Slots: 1})
	hold, err := c.Admit(context.Background(), openTenant("holder"), Interactive)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		class Class
		err   error
	}
	order := make(chan result, 2)
	var wg sync.WaitGroup
	admitAsync := func(class Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Admit(context.Background(), openTenant("t-"+class.String()), class)
			order <- result{class, err}
			if err == nil {
				tk.Release()
			}
		}()
	}

	admitAsync(Batch) // queued first…
	waitForWaiting(t, c, Batch, 1)
	admitAsync(Interactive) // …but interactive must win the next slot
	waitForWaiting(t, c, Interactive, 1)

	hold.Release()
	first := <-order
	second := <-order
	wg.Wait()
	if first.err != nil || second.err != nil {
		t.Fatalf("admissions failed: %v / %v", first.err, second.err)
	}
	if first.class != Interactive {
		t.Fatalf("batch was admitted before interactive")
	}
	if second.class != Batch {
		t.Fatalf("batch never admitted")
	}
}

// TestRateLimit: an empty token bucket rejects with RateLimited and an
// accurate Retry-After; refill restores admission.
func TestRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := newTestController(t, Config{Slots: 8, Now: clock})
	tn := &Tenant{Name: "metered", Rate: 2, Burst: 2, MaxInFlight: Unlimited}

	for i := 0; i < 2; i++ {
		tk, err := c.Admit(context.Background(), tn, Interactive)
		if err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
		tk.Release()
	}
	_, err := c.Admit(context.Background(), tn, Interactive)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != RateLimited {
		t.Fatalf("want RateLimited OverloadError, got %v", err)
	}
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("rejection does not wrap ErrOverload: %v", err)
	}
	// 2 tokens/s means the next token is 500ms out.
	if oe.RetryAfter <= 0 || oe.RetryAfter > 500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want (0, 500ms]", oe.RetryAfter)
	}

	advance(time.Second) // refills 2 tokens
	tk, err := c.Admit(context.Background(), tn, Interactive)
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	tk.Release()
}

// TestQuota: a tenant at MaxInFlight is rejected with OverQuota while
// other tenants are unaffected; releasing restores admission.
func TestQuota(t *testing.T) {
	c := newTestController(t, Config{Slots: 8})
	small := &Tenant{Name: "small", Rate: Unlimited, MaxInFlight: 2}

	tk1, err := c.Admit(context.Background(), small, Batch)
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := c.Admit(context.Background(), small, Batch)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Admit(context.Background(), small, Batch)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != OverQuota {
		t.Fatalf("want OverQuota, got %v", err)
	}

	// An unrelated tenant is unaffected by small's quota exhaustion.
	other, err := c.Admit(context.Background(), openTenant("other"), Batch)
	if err != nil {
		t.Fatalf("in-quota tenant rejected alongside over-quota one: %v", err)
	}
	other.Release()

	tk1.Release()
	tk3, err := c.Admit(context.Background(), small, Batch)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	tk3.Release()
	tk2.Release()
}

// TestQueueFull: a class queue at capacity sheds immediately.
func TestQueueFull(t *testing.T) {
	c := newTestController(t, Config{Slots: 1, QueueDepth: 1})
	hold, err := c.Admit(context.Background(), openTenant("a"), Batch)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tk, err := c.Admit(context.Background(), openTenant("b"), Batch)
		if err == nil {
			tk.Release()
		}
		done <- err
	}()
	waitForWaiting(t, c, Batch, 1)

	_, err = c.Admit(context.Background(), openTenant("c"), Batch)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != QueueFull {
		t.Fatalf("want QueueFull, got %v", err)
	}
	// The other class's queue has its own bound: an interactive waiter
	// still parks fine.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		tk, err := c.Admit(ctx, openTenant("d"), Interactive)
		if err == nil {
			tk.Release()
		}
	}()
	waitForWaiting(t, c, Interactive, 1)
	cancel()
	waitForWaiting(t, c, Interactive, 0)

	hold.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

// TestCancelWhileWaiting: a waiter whose context expires is rejected and
// leaves no stuck quota hold or queue entry.
func TestCancelWhileWaiting(t *testing.T) {
	c := newTestController(t, Config{Slots: 1})
	hold, err := c.Admit(context.Background(), openTenant("a"), Batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = c.Admit(ctx, openTenant("b"), Batch)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != QueueFull {
		t.Fatalf("want QueueFull on ctx expiry, got %v", err)
	}
	hold.Release()
	s := c.Stats()
	if s.FreeSlots != 1 || len(s.HeldByTenant) != 0 {
		t.Fatalf("canceled waiter leaked state: %+v", s)
	}
}

// TestClose wakes parked waiters with Shutdown and rejects new work.
func TestClose(t *testing.T) {
	c := newTestController(t, Config{Slots: 1})
	hold, err := c.Admit(context.Background(), openTenant("a"), Batch)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), openTenant("b"), Batch)
		done <- err
	}()
	waitForWaiting(t, c, Batch, 1)
	c.Close()
	err = <-done
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != Shutdown {
		t.Fatalf("parked waiter: want Shutdown, got %v", err)
	}
	if _, err := c.Admit(context.Background(), openTenant("c"), Batch); !errors.Is(err, ErrOverload) {
		t.Fatalf("post-close admit: want overload, got %v", err)
	}
	hold.Release()
	c.Close() // idempotent
}

// TestConcurrentAdmitRace hammers Admit/Release from many goroutines
// (run under -race): all admissions eventually succeed or shed cleanly,
// and every slot returns to the pool.
func TestConcurrentAdmitRace(t *testing.T) {
	c := newTestController(t, Config{Slots: 3, QueueDepth: 8})
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tn := openTenant(fmt.Sprintf("t%d", g%3))
			for i := 0; i < 50; i++ {
				class := Class(i % int(numClasses))
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				tk, err := c.Admit(ctx, tn, class)
				cancel()
				if err != nil {
					if !errors.Is(err, ErrOverload) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				tk.Release()
			}
		}(g)
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := c.Stats(); s.FreeSlots == 3 && len(s.HeldByTenant) == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("slots leaked: %+v", c.Stats())
}
