// Package admit is the multi-tenant admission-control layer in front of
// the render farm: a bounded, class-ordered admission queue with
// per-tenant concurrency quotas and token-bucket rate limits.
//
// The farm itself (internal/farm) accepts whatever it is given and the
// Prometheus histograms (internal/obs/telem) only observe latency; admit
// is what acts on it. Every submission first passes Admit, which either
// grants a Ticket — possibly after waiting in a priority queue where
// interactive jobs are always served before queued batch work — or
// rejects immediately with a typed *OverloadError carrying the reason and
// a Retry-After hint (cmd/pimfarm maps it to HTTP 429).
//
// Admission is observational-only with respect to simulation output: it
// decides when work enters the farm, never what the work computes, so
// served results are byte-identical to an unloaded serial run and cache
// keys are untouched.
package admit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs/telem"
)

// Class is a job's priority class. Interactive work (single-frame,
// latency-sensitive) is always admitted ahead of queued Batch work
// (multi-frame sweeps), at every queueing point: the admission queue here
// and the distributed coordinator's lease queue.
type Class int

const (
	// Interactive is the latency-sensitive class (single-frame jobs).
	Interactive Class = iota
	// Batch is the throughput class (multi-frame sweeps); it yields to
	// Interactive whenever both are waiting.
	Batch
	numClasses
)

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return "unknown"
	}
}

// ParseClass maps the wire spelling to a Class. The empty string is not
// accepted here — callers that infer a default (pimfarm infers Batch for
// multi-frame jobs) do so before parsing.
func ParseClass(s string) (Class, error) {
	switch s {
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	default:
		return 0, fmt.Errorf("unknown class %q (interactive, batch)", s)
	}
}

// Reason is why an admission was refused.
type Reason int

const (
	// RateLimited: the tenant's token bucket is empty.
	RateLimited Reason = iota
	// OverQuota: the tenant already has MaxInFlight jobs admitted or
	// waiting.
	OverQuota
	// QueueFull: the class's admission wait queue is at capacity.
	QueueFull
	// Shutdown: the controller was closed.
	Shutdown
)

func (r Reason) String() string {
	switch r {
	case RateLimited:
		return "rate_limited"
	case OverQuota:
		return "over_quota"
	case QueueFull:
		return "queue_full"
	case Shutdown:
		return "shutdown"
	default:
		return "unknown"
	}
}

// ErrOverload is the sentinel every load-shed rejection wraps;
// errors.Is(err, ErrOverload) identifies a 429-able refusal regardless of
// reason.
var ErrOverload = errors.New("admit: overload")

// OverloadError is a typed load-shed rejection: which tenant was refused,
// why, and how long the client should back off before retrying.
type OverloadError struct {
	Tenant     string
	Class      Class
	Reason     Reason
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("admit: %s: tenant %q class %s (retry after %s)",
		e.Reason, e.Tenant, e.Class, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap makes errors.Is(err, ErrOverload) true for every rejection.
func (e *OverloadError) Unwrap() error { return ErrOverload }

// Defaults used when Config fields are zero.
const (
	// DefaultSlots bounds jobs concurrently admitted into the farm.
	DefaultSlots = 4
	// DefaultQueueDepth bounds each class's admission wait queue.
	DefaultQueueDepth = 256
	// DefaultRetryAfter is the back-off hint for quota and queue-full
	// rejections, where no token-refill arithmetic applies.
	DefaultRetryAfter = time.Second
)

// Config configures a Controller.
type Config struct {
	// Slots is how many admitted jobs may be inside the farm at once
	// (queued-on-a-worker or running). <= 0 selects DefaultSlots.
	// cmd/pimfarm sets it to the farm's worker-pool size, so all queueing
	// happens here, where priority ordering applies.
	Slots int
	// QueueDepth bounds each class's admission wait queue; a submission
	// arriving at a full queue is rejected immediately (QueueFull).
	// <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// Tenants authorizes and bounds callers; nil selects an open set that
	// admits any tenant name under per-tenant defaults.
	Tenants *TenantSet
	// RetryAfter is the back-off hint attached to quota and queue-full
	// rejections; <= 0 selects DefaultRetryAfter. Rate-limit rejections
	// compute the exact time until the next token instead.
	RetryAfter time.Duration
	// Metrics is the live-telemetry registry admission publishes
	// pim_farm_admitted_total and friends into; nil selects
	// telem.Default().
	Metrics *telem.Registry
	// Now is the clock (tests inject a fake); nil selects time.Now.
	Now func() time.Time
}

// waiter is one submission parked in a class queue.
type waiter struct {
	tenant  string
	class   Class
	granted chan struct{} // closed when resolved (slot handed over, or shutdown)
	gone    bool          // abandoned (ctx canceled); slot must not stick
	// rejected is set (under the controller lock, before granted closes)
	// when the controller shut down instead of handing over a slot; the
	// close of granted orders the write before the waiter's read.
	rejected bool
}

// Controller is the admission gate. Safe for concurrent use.
type Controller struct {
	cfg  Config
	met  *admitMetrics
	burn burnTracker

	mu      sync.Mutex
	closed  bool
	free    int // unheld slots
	queues  [numClasses][]*waiter
	held    map[string]int     // tenant → admitted + waiting count (quota)
	buckets map[string]*bucket // tenant → token bucket
}

// bucket is a lazily refilled token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// admitMetrics holds the admission-control telemetry instruments.
type admitMetrics struct {
	reg      *telem.Registry
	outcomes sync.Map // "tenant\x00class\x00outcome" → *telem.Counter
	rejected sync.Map // tenant → *telem.Counter
	depth    [numClasses]*telem.Gauge
	wait     [numClasses]*telem.Histogram
	burn     [numClasses][]*telem.Gauge // indexed by burnWindows position
}

func newAdmitMetrics(r *telem.Registry) *admitMetrics {
	m := &admitMetrics{reg: r}
	for c := Class(0); c < numClasses; c++ {
		m.depth[c] = r.Gauge("pim_farm_admit_queue_depth",
			"Submissions waiting in the admission queue, by class.",
			telem.Labels{"class": c.String()})
		m.wait[c] = r.Histogram("pim_farm_admission_wait_seconds",
			"Time admitted submissions waited for an admission slot, by class.",
			nil, telem.Labels{"class": c.String()})
		m.burn[c] = make([]*telem.Gauge, len(burnWindows))
		for wi, w := range burnWindows {
			m.burn[c][wi] = r.Gauge("pim_farm_slo_burn_ratio",
				"Admission-wait SLO burn ratio (miss fraction over error budget), by class and window.",
				telem.Labels{"class": c.String(), "window": w.name})
		}
	}
	return m
}

// outcome bumps pim_farm_admitted_total{tenant,class,outcome}, creating
// the series on first use (tenant names arrive at runtime, not
// registration time).
func (m *admitMetrics) outcome(tenant string, class Class, outcome string) {
	if m.reg == nil {
		return
	}
	key := tenant + "\x00" + class.String() + "\x00" + outcome
	v, ok := m.outcomes.Load(key)
	if !ok {
		v, _ = m.outcomes.LoadOrStore(key, m.reg.Counter("pim_farm_admitted_total",
			"Admission decisions by tenant, class and outcome.",
			telem.Labels{"tenant": tenant, "class": class.String(), "outcome": outcome}))
	}
	v.(*telem.Counter).Inc()
}

// reject bumps the per-tenant rejected counter alongside the outcome
// series.
func (m *admitMetrics) reject(tenant string, class Class, reason Reason) {
	m.outcome(tenant, class, "rejected_"+reason.String())
	if m.reg == nil {
		return
	}
	v, ok := m.rejected.Load(tenant)
	if !ok {
		v, _ = m.rejected.LoadOrStore(tenant, m.reg.Counter("pim_farm_admit_rejected_total",
			"Load-shed rejections by tenant (all reasons).",
			telem.Labels{"tenant": tenant}))
	}
	v.(*telem.Counter).Inc()
}

// New builds a Controller.
func New(cfg Config) *Controller {
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Tenants == nil {
		cfg.Tenants = OpenTenants()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telem.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{
		cfg:     cfg,
		met:     newAdmitMetrics(cfg.Metrics),
		free:    cfg.Slots,
		held:    make(map[string]int),
		buckets: make(map[string]*bucket),
	}
}

// Tenants returns the controller's tenant set.
func (c *Controller) Tenants() *TenantSet { return c.cfg.Tenants }

// Ticket is one granted admission. Release returns the slot (idempotent);
// Wait reports how long admission took.
type Ticket struct {
	c      *Controller
	tenant string
	class  Class
	wait   time.Duration
	once   sync.Once
}

// Tenant returns the tenant the ticket was granted to.
func (t *Ticket) Tenant() string { return t.tenant }

// Class returns the granted priority class.
func (t *Ticket) Class() Class { return t.class }

// Wait returns the admission wait this ticket experienced.
func (t *Ticket) Wait() time.Duration { return t.wait }

// Release returns the admission slot, waking the highest-priority waiter.
// Idempotent and nil-safe.
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	t.once.Do(func() { t.c.release(t.tenant) })
}

// Admit asks for one admission slot for tenant's job of the given class.
// It returns immediately when a slot is free, parks in the class's
// bounded wait queue when not (interactive waiters are always granted
// before batch waiters, regardless of arrival order), and rejects with a
// *OverloadError — wrapping ErrOverload — when the tenant is over its
// rate limit or quota or the class queue is full. ctx bounds the wait; a
// context expiry surfaces as QueueFull overload (the caller waited as
// long as it would, and the queue did not drain).
func (c *Controller) Admit(ctx context.Context, tenant *Tenant, class Class) (*Ticket, error) {
	if tenant == nil {
		return nil, errors.New("admit: nil tenant")
	}
	start := c.cfg.Now()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, &OverloadError{Tenant: tenant.Name, Class: class,
			Reason: Shutdown, RetryAfter: c.cfg.RetryAfter}
	}
	// Rate limit first: a token is consumed only if the bucket has one,
	// so refused submissions do not burn the tenant's budget.
	if wait, ok := c.takeTokenLocked(tenant, start); !ok {
		c.mu.Unlock()
		c.met.reject(tenant.Name, class, RateLimited)
		return nil, &OverloadError{Tenant: tenant.Name, Class: class,
			Reason: RateLimited, RetryAfter: wait}
	}
	// Quota: admitted + waiting jobs per tenant.
	if q := tenant.quota(); q > 0 && c.held[tenant.Name] >= q {
		c.mu.Unlock()
		c.met.reject(tenant.Name, class, OverQuota)
		return nil, &OverloadError{Tenant: tenant.Name, Class: class,
			Reason: OverQuota, RetryAfter: c.cfg.RetryAfter}
	}
	c.held[tenant.Name]++
	if c.free > 0 {
		c.free--
		c.mu.Unlock()
		c.met.outcome(tenant.Name, class, "admitted")
		c.met.wait[class].Observe(0)
		c.burn.record(class, 0, start)
		return &Ticket{c: c, tenant: tenant.Name, class: class}, nil
	}
	if len(c.queues[class]) >= c.cfg.QueueDepth {
		c.held[tenant.Name]--
		c.mu.Unlock()
		c.met.reject(tenant.Name, class, QueueFull)
		return nil, &OverloadError{Tenant: tenant.Name, Class: class,
			Reason: QueueFull, RetryAfter: c.cfg.RetryAfter}
	}
	w := &waiter{tenant: tenant.Name, class: class, granted: make(chan struct{})}
	c.queues[class] = append(c.queues[class], w)
	c.met.depth[class].Set(float64(c.queueLenLocked(class)))
	c.mu.Unlock()

	select {
	case <-w.granted:
		return c.resolveGrant(w, tenant.Name, class, start)
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case <-w.granted:
			// Lost the race: a release granted us between ctx firing and
			// taking the lock. Keep the grant.
			c.mu.Unlock()
			return c.resolveGrant(w, tenant.Name, class, start)
		default:
		}
		w.gone = true
		c.decHeldLocked(tenant.Name)
		c.met.depth[class].Set(float64(c.queueLenLocked(class)))
		c.mu.Unlock()
		c.met.reject(tenant.Name, class, QueueFull)
		return nil, &OverloadError{Tenant: tenant.Name, Class: class,
			Reason: QueueFull, RetryAfter: c.cfg.RetryAfter}
	}
}

// resolveGrant finishes a woken waiter: a real slot becomes a ticket; a
// shutdown wake becomes the Shutdown overload error (Close already
// returned the tenant's quota hold).
func (c *Controller) resolveGrant(w *waiter, tenant string, class Class, start time.Time) (*Ticket, error) {
	if w.rejected {
		c.met.reject(tenant, class, Shutdown)
		return nil, &OverloadError{Tenant: tenant, Class: class,
			Reason: Shutdown, RetryAfter: c.cfg.RetryAfter}
	}
	wait := c.cfg.Now().Sub(start)
	c.met.outcome(tenant, class, "admitted")
	c.met.wait[class].Observe(wait.Seconds())
	c.burn.record(class, wait, c.cfg.Now())
	return &Ticket{c: c, tenant: tenant, class: class, wait: wait}, nil
}

// release returns one slot: the oldest interactive waiter gets it, then
// the oldest batch waiter, then it goes back to the free pool.
func (c *Controller) release(tenant string) {
	c.mu.Lock()
	c.decHeldLocked(tenant)
	for class := Class(0); class < numClasses; class++ {
		for len(c.queues[class]) > 0 {
			w := c.queues[class][0]
			c.queues[class] = c.queues[class][1:]
			if w.gone {
				continue
			}
			close(w.granted)
			c.met.depth[class].Set(float64(c.queueLenLocked(class)))
			c.mu.Unlock()
			return
		}
		c.met.depth[class].Set(0)
	}
	c.free++
	c.mu.Unlock()
}

// takeTokenLocked refills tenant's bucket to now and consumes one token.
// On an empty bucket it reports the wait until the next token. Caller
// holds c.mu.
func (c *Controller) takeTokenLocked(t *Tenant, now time.Time) (time.Duration, bool) {
	rate := t.rate()
	if rate <= 0 { // unlimited
		return 0, true
	}
	burst := t.burst()
	b, ok := c.buckets[t.Name]
	if !ok {
		b = &bucket{tokens: burst, last: now}
		c.buckets[t.Name] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt*rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / rate
	return time.Duration(need * float64(time.Second)), false
}

// queueLenLocked counts live (non-abandoned) waiters in a class queue.
// Caller holds c.mu.
func (c *Controller) queueLenLocked(class Class) int {
	n := 0
	for _, w := range c.queues[class] {
		if !w.gone {
			n++
		}
	}
	return n
}

// ClassStats is one class's admission-queue view.
type ClassStats struct {
	Waiting int `json:"waiting"`
}

// Stats is a point-in-time snapshot of admission state (the "admit"
// block in pimfarm's /varz).
type Stats struct {
	Slots        int                   `json:"slots"`
	FreeSlots    int                   `json:"free_slots"`
	QueueDepth   int                   `json:"queue_depth"`
	Queues       map[string]ClassStats `json:"queues"`
	HeldByTenant map[string]int        `json:"held_by_tenant,omitempty"`
	// SLOBurn is the admission-wait burn ratio by class and window (see
	// BurnRatios); the /varz twin of pim_farm_slo_burn_ratio.
	SLOBurn map[string]map[string]float64 `json:"slo_burn,omitempty"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	burn := c.BurnRatios()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		SLOBurn:    burn,
		Slots:      c.cfg.Slots,
		FreeSlots:  c.free,
		QueueDepth: c.cfg.QueueDepth,
		Queues:     make(map[string]ClassStats, numClasses),
	}
	for class := Class(0); class < numClasses; class++ {
		s.Queues[class.String()] = ClassStats{Waiting: c.queueLenLocked(class)}
	}
	if len(c.held) > 0 {
		s.HeldByTenant = make(map[string]int, len(c.held))
		for t, n := range c.held {
			s.HeldByTenant[t] = n
		}
	}
	return s
}

// decHeldLocked returns one of tenant's quota holds. Caller holds c.mu.
func (c *Controller) decHeldLocked(tenant string) {
	if n := c.held[tenant]; n > 1 {
		c.held[tenant] = n - 1
	} else {
		delete(c.held, tenant)
	}
}

// Close rejects all future admissions and wakes every parked waiter with
// a Shutdown overload (their Admit calls return the error, not a ticket).
// Idempotent. Tickets already granted remain valid; their Release still
// returns slots (harmlessly, since nothing new is admitted).
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for class := Class(0); class < numClasses; class++ {
		for _, w := range c.queues[class] {
			if w.gone {
				continue
			}
			w.gone = true
			w.rejected = true
			c.decHeldLocked(w.tenant)
			close(w.granted)
		}
		c.queues[class] = nil
		c.met.depth[class].Set(0)
	}
	c.mu.Unlock()
}
