package admit

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeTenants(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTenants(t *testing.T) {
	path := writeTenants(t, `{
		"schema": "pim-render/tenants/v1",
		"default": {"rate": 5, "burst": 10, "max_in_flight": 4},
		"tenants": [
			{"name": "alice", "key": "key-alice", "rate": 20},
			{"name": "bob", "max_in_flight": 2},
			{"name": "firehose", "rate": -1, "max_in_flight": -1}
		]
	}`)
	s, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}

	alice, err := s.Authorize("key-alice", "")
	if err != nil {
		t.Fatal(err)
	}
	if alice.Name != "alice" || alice.rate() != 20 || alice.quota() != 4 {
		t.Errorf("alice = %+v (rate %v quota %d)", alice, alice.rate(), alice.quota())
	}

	// Keyed tenants cannot be selected by bare name.
	if _, err := s.Authorize("", "alice"); !errors.Is(err, ErrKeyRequired) {
		t.Errorf("bare-name keyed tenant: want ErrKeyRequired, got %v", err)
	}
	// Unkeyed tenants can.
	bob, err := s.Authorize("", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if bob.quota() != 2 || bob.rate() != 5 {
		t.Errorf("bob limits = rate %v quota %d, want 5/2", bob.rate(), bob.quota())
	}
	// Unlimited spellings resolve to no limit.
	fh, err := s.Authorize("", "firehose")
	if err != nil {
		t.Fatal(err)
	}
	if fh.rate() != 0 || fh.quota() != 0 {
		t.Errorf("firehose should be unlimited, got rate %v quota %d", fh.rate(), fh.quota())
	}

	// Strict set: unknown keys and names are refused.
	if _, err := s.Authorize("nope", ""); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad key: want ErrBadKey, got %v", err)
	}
	if _, err := s.Authorize("", "mallory"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant: want ErrUnknownTenant, got %v", err)
	}
	if _, err := s.Authorize("", ""); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("anonymous against strict set: want ErrUnknownTenant, got %v", err)
	}
}

func TestLoadTenantsAllowUnknown(t *testing.T) {
	path := writeTenants(t, `{
		"schema": "pim-render/tenants/v1",
		"allow_unknown": true,
		"default": {"rate": 3, "max_in_flight": 2},
		"tenants": [{"name": "alice", "key": "key-alice"}]
	}`)
	s, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Authorize("", "walk-in")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "walk-in" || got.rate() != 3 || got.quota() != 2 {
		t.Errorf("walk-in = %+v", got)
	}
	// Memoized: the same record comes back (limits accrue per name).
	again, _ := s.Authorize("", "walk-in")
	if got != again {
		t.Error("unknown tenant records not memoized")
	}
	anon, err := s.Authorize("", "")
	if err != nil || anon.Name != AnonymousTenant {
		t.Errorf("anonymous = %+v, %v", anon, err)
	}
}

func TestLoadTenantsRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"bad schema":    `{"schema": "nope/v1", "tenants": []}`,
		"unnamed":       `{"schema": "pim-render/tenants/v1", "tenants": [{"key": "k"}]}`,
		"duplicate":     `{"schema": "pim-render/tenants/v1", "tenants": [{"name":"a"},{"name":"a"}]}`,
		"reused key":    `{"schema": "pim-render/tenants/v1", "tenants": [{"name":"a","key":"k"},{"name":"b","key":"k"}]}`,
		"unknown field": `{"schema": "pim-render/tenants/v1", "tenantz": []}`,
		"not json":      `hello`,
	}
	for name, body := range cases {
		if _, err := LoadTenants(writeTenants(t, body)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := LoadTenants(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestOpenTenants(t *testing.T) {
	s := OpenTenants()
	anon, err := s.Authorize("", "")
	if err != nil || anon.Name != AnonymousTenant {
		t.Fatalf("anonymous = %+v, %v", anon, err)
	}
	if anon.rate() != 0 || anon.quota() != 0 {
		t.Errorf("open tenants must be unlimited, got rate %v quota %d", anon.rate(), anon.quota())
	}
	dev, err := s.Authorize("", "dev-box")
	if err != nil || dev.Name != "dev-box" {
		t.Fatalf("named dev tenant = %+v, %v", dev, err)
	}
	// Keys against the open set still fail (there is nothing to match).
	if _, err := s.Authorize("some-key", ""); !errors.Is(err, ErrBadKey) {
		t.Errorf("open set with key: want ErrBadKey, got %v", err)
	}
}
