package admit

import (
	"sync"
	"time"
)

// SLO burn-rate accounting. Each admitted submission is graded against a
// per-class admission-wait objective; the fraction of objective misses
// over a sliding window, divided by the error budget, is the burn ratio
// exported as pim_farm_slo_burn_ratio{class,window}. A ratio of 1.0 means
// the farm is burning budget exactly as fast as the SLO allows; >1 means
// an alert-worthy burn (the multi-window convention: page when both the
// short and long windows burn hot, so a brief spike alone does not page).
const (
	// burnBucket is the accounting granularity of the sliding windows.
	burnBucket = 15 * time.Second
	// burnBuckets is the ring size: enough 15s cells to cover the longest
	// window (1h) exactly.
	burnBuckets = 240
	// burnBudget is the error budget: the tolerated fraction of admitted
	// submissions that may miss their class's wait objective.
	burnBudget = 0.01
)

// burnObjectives are the per-class admission-wait objectives: an admitted
// submission that waited longer than its class's objective counts against
// the error budget. Interactive tracks the pimload e2e SLO shape (waits
// should be near-zero when the farm is healthy); batch tolerates parking
// behind interactive work.
var burnObjectives = [numClasses]time.Duration{
	Interactive: time.Second,
	Batch:       30 * time.Second,
}

// burnWindows are the exported sliding windows, in gauge-label form.
var burnWindows = []struct {
	name string
	d    time.Duration
}{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// burnCell is one 15s accounting bucket. epoch identifies which absolute
// bucket the cell currently holds, so stale cells are reset lazily on
// write and skipped on read — no background ticker needed.
type burnCell struct {
	epoch int64
	total uint64
	bad   uint64
}

// burnTracker grades admissions into per-class bucket rings. The zero
// value is ready to use.
type burnTracker struct {
	mu    sync.Mutex
	cells [numClasses][burnBuckets]burnCell
}

// record grades one admitted submission's wait at time now.
func (b *burnTracker) record(class Class, wait time.Duration, now time.Time) {
	if class < 0 || class >= numClasses {
		return
	}
	e := now.Unix() / int64(burnBucket/time.Second)
	c := &b.cells[class][int(e%burnBuckets)]
	b.mu.Lock()
	if c.epoch != e {
		c.epoch = e
		c.total, c.bad = 0, 0
	}
	c.total++
	if wait > burnObjectives[class] {
		c.bad++
	}
	b.mu.Unlock()
}

// ratio computes the burn ratio for one class over the window ending at
// now: (objective-miss fraction) / (error budget). Zero when the window
// saw no admissions.
func (b *burnTracker) ratio(class Class, window time.Duration, now time.Time) float64 {
	if class < 0 || class >= numClasses {
		return 0
	}
	e := now.Unix() / int64(burnBucket/time.Second)
	span := int64(window / burnBucket)
	if span < 1 {
		span = 1
	}
	var total, bad uint64
	b.mu.Lock()
	for i := range b.cells[class] {
		if c := &b.cells[class][i]; c.epoch > e-span && c.epoch <= e {
			total += c.total
			bad += c.bad
		}
	}
	b.mu.Unlock()
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / burnBudget
}

// BurnRatios computes the current burn ratios for every class and window,
// refreshes the pim_farm_slo_burn_ratio gauges to match, and returns the
// ratios keyed class → window. pimfarm calls it at every /metrics scrape
// (gauges are push-style, so scrape-time sync keeps them honest) and
// folds the returned map into the /varz admit block via Stats.
func (c *Controller) BurnRatios() map[string]map[string]float64 {
	now := c.cfg.Now()
	out := make(map[string]map[string]float64, numClasses)
	for class := Class(0); class < numClasses; class++ {
		byWindow := make(map[string]float64, len(burnWindows))
		for wi, w := range burnWindows {
			r := c.burn.ratio(class, w.d, now)
			byWindow[w.name] = r
			if g := c.met.burn[class][wi]; g != nil {
				g.Set(r)
			}
		}
		out[class.String()] = byWindow
	}
	return out
}
