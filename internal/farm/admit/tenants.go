package admit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// TenantsSchema identifies the -tenants config file format.
const TenantsSchema = "pim-render/tenants/v1"

// Per-tenant defaults applied when a Tenant (or the file's "default"
// block) leaves a field zero.
const (
	// DefaultTenantRate is sustained admissions/second per tenant.
	DefaultTenantRate = 50.0
	// DefaultTenantBurst is the token-bucket depth per tenant.
	DefaultTenantBurst = 100
	// DefaultTenantMaxInFlight bounds one tenant's admitted + waiting
	// jobs.
	DefaultTenantMaxInFlight = 64
)

// Unlimited disables a per-tenant limit when assigned to Rate,
// Burst or MaxInFlight (the JSON spelling is -1).
const Unlimited = -1

// Tenant is one configured caller of the farm API.
type Tenant struct {
	// Name identifies the tenant in job views, spans, SSE events and
	// telemetry labels.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>".
	// Empty means the tenant needs no key and may be selected with the
	// dev-mode ?tenant= query parameter.
	Key string `json:"key,omitempty"`
	// Rate is sustained admissions/second (token-bucket refill);
	// 0 selects DefaultTenantRate, -1 is unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket depth; 0 selects DefaultTenantBurst.
	Burst int `json:"burst,omitempty"`
	// MaxInFlight bounds the tenant's admitted + waiting jobs;
	// 0 selects DefaultTenantMaxInFlight, -1 is unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// rate resolves the effective refill rate (<= 0 means unlimited).
func (t *Tenant) rate() float64 {
	switch {
	case t.Rate == 0:
		return DefaultTenantRate
	case t.Rate < 0:
		return 0
	default:
		return t.Rate
	}
}

// burst resolves the effective bucket depth.
func (t *Tenant) burst() float64 {
	if t.Burst <= 0 {
		return DefaultTenantBurst
	}
	return float64(t.Burst)
}

// quota resolves the effective in-flight bound (<= 0 means unlimited).
func (t *Tenant) quota() int {
	switch {
	case t.MaxInFlight == 0:
		return DefaultTenantMaxInFlight
	case t.MaxInFlight < 0:
		return 0
	default:
		return t.MaxInFlight
	}
}

// AnonymousTenant names the tenant used when a request carries no
// Authorization header and no ?tenant= parameter.
const AnonymousTenant = "anonymous"

// Errors returned by Authorize.
var (
	// ErrBadKey rejects an Authorization header whose key matches no
	// tenant.
	ErrBadKey = errors.New("admit: unknown API key")
	// ErrUnknownTenant rejects a ?tenant= name the set does not carry
	// (when the set is strict).
	ErrUnknownTenant = errors.New("admit: unknown tenant")
	// ErrKeyRequired rejects selecting a keyed tenant by name alone.
	ErrKeyRequired = errors.New("admit: tenant requires an API key")
)

// tenantsFile is the on-disk -tenants document.
type tenantsFile struct {
	Schema string `json:"schema"`
	// Default seeds limits for tenants that leave fields zero, and for
	// unknown tenants when AllowUnknown is set.
	Default *Tenant `json:"default,omitempty"`
	// AllowUnknown admits tenants not listed in Tenants (under Default
	// limits); without it an unknown name or key is a 401.
	AllowUnknown bool     `json:"allow_unknown,omitempty"`
	Tenants      []Tenant `json:"tenants"`
}

// TenantSet authorizes request credentials into *Tenant records. Safe
// for concurrent use (lookups after construction are read-only, except
// for the memoized unknown-tenant records guarded by mu).
type TenantSet struct {
	byName       map[string]*Tenant
	byKey        map[string]*Tenant
	defaults     Tenant
	allowUnknown bool

	mu      sync.Mutex
	unknown map[string]*Tenant // memoized so limits accrue per name
}

// OpenTenants is the no-config tenant set: any name is accepted (the
// anonymous tenant when none is given) and every tenant gets unlimited
// rate and a quota bounded only by the admission queue. It keeps a bare
// `pimfarm` invocation as permissive as before -tenants existed, while
// still giving every request a tenant identity for telemetry.
func OpenTenants() *TenantSet {
	return &TenantSet{
		byName:       map[string]*Tenant{},
		byKey:        map[string]*Tenant{},
		defaults:     Tenant{Rate: Unlimited, MaxInFlight: Unlimited},
		allowUnknown: true,
		unknown:      map[string]*Tenant{},
	}
}

// NewTenantSet builds a strict set from explicit records (tests and
// embedders); zero fields fall back to the package defaults.
func NewTenantSet(tenants []Tenant) (*TenantSet, error) {
	return buildSet(tenantsFile{Schema: TenantsSchema, Tenants: tenants})
}

// LoadTenants reads a pim-render/tenants/v1 JSON file.
func LoadTenants(path string) (*TenantSet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	var f tenantsFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenants: parse %s: %w", path, err)
	}
	if f.Schema != TenantsSchema {
		return nil, fmt.Errorf("tenants: %s: schema %q, want %q", path, f.Schema, TenantsSchema)
	}
	return buildSet(f)
}

func buildSet(f tenantsFile) (*TenantSet, error) {
	s := &TenantSet{
		byName:       make(map[string]*Tenant, len(f.Tenants)),
		byKey:        make(map[string]*Tenant, len(f.Tenants)),
		allowUnknown: f.AllowUnknown,
		unknown:      map[string]*Tenant{},
	}
	if f.Default != nil {
		s.defaults = *f.Default
	}
	for i := range f.Tenants {
		t := f.Tenants[i] // copy; the set owns its records
		if t.Name == "" {
			return nil, fmt.Errorf("tenants: tenant %d has no name", i)
		}
		if _, dup := s.byName[t.Name]; dup {
			return nil, fmt.Errorf("tenants: duplicate tenant %q", t.Name)
		}
		applyDefaults(&t, s.defaults)
		s.byName[t.Name] = &t
		if t.Key != "" {
			if _, dup := s.byKey[t.Key]; dup {
				return nil, fmt.Errorf("tenants: tenant %q reuses another tenant's key", t.Name)
			}
			s.byKey[t.Key] = &t
		}
	}
	return s, nil
}

// applyDefaults fills t's zero limits from d's non-zero ones.
func applyDefaults(t *Tenant, d Tenant) {
	if t.Rate == 0 {
		t.Rate = d.Rate
	}
	if t.Burst == 0 {
		t.Burst = d.Burst
	}
	if t.MaxInFlight == 0 {
		t.MaxInFlight = d.MaxInFlight
	}
}

// Authorize resolves request credentials to a tenant record. key is the
// bearer token from the Authorization header ("" when absent); name is
// the dev-mode ?tenant= parameter ("" when absent). Precedence: a key
// always wins (and must match); a bare name selects an unkeyed tenant or,
// when the set allows unknowns, a memoized default-limits record; with
// neither, the anonymous tenant applies (if allowed).
func (s *TenantSet) Authorize(key, name string) (*Tenant, error) {
	if key != "" {
		t, ok := s.byKey[key]
		if !ok {
			return nil, ErrBadKey
		}
		return t, nil
	}
	if name == "" {
		name = AnonymousTenant
	}
	if t, ok := s.byName[name]; ok {
		if t.Key != "" {
			return nil, fmt.Errorf("%w: %q", ErrKeyRequired, name)
		}
		return t, nil
	}
	if !s.allowUnknown {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.unknown[name]; ok {
		return t, nil
	}
	t := s.defaults
	t.Name = name
	t.Key = ""
	s.unknown[name] = &t
	return &t, nil
}

// Len returns how many tenants are explicitly configured.
func (s *TenantSet) Len() int { return len(s.byName) }
