package admit

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs/telem"
)

func TestBurnTrackerRatio(t *testing.T) {
	var b burnTracker
	now := time.Unix(1_700_000_000, 0)

	// 98 in-objective admissions, 2 misses → miss fraction 0.02, ratio
	// 0.02 / 0.01 = 2.0 on every window covering them.
	for i := 0; i < 98; i++ {
		b.record(Interactive, 0, now)
	}
	b.record(Interactive, 5*time.Second, now)
	b.record(Interactive, 2*time.Second, now)

	for _, w := range burnWindows {
		if got := b.ratio(Interactive, w.d, now); got < 1.99 || got > 2.01 {
			t.Fatalf("ratio(%s) = %v, want 2.0", w.name, got)
		}
	}
	if got := b.ratio(Batch, 5*time.Minute, now); got != 0 {
		t.Fatalf("batch ratio = %v, want 0 (no admissions)", got)
	}
}

func TestBurnTrackerWindowing(t *testing.T) {
	var b burnTracker
	now := time.Unix(1_700_000_000, 0)

	// A miss 10 minutes ago falls outside the 5m window but inside 1h.
	b.record(Batch, time.Hour, now.Add(-10*time.Minute))
	if got := b.ratio(Batch, 5*time.Minute, now); got != 0 {
		t.Fatalf("5m ratio = %v, want 0 (miss is 10m old)", got)
	}
	if got := b.ratio(Batch, time.Hour, now); got != 100 {
		t.Fatalf("1h ratio = %v, want 100 (1 of 1 missed)", got)
	}

	// Ring wrap: samples a full ring-duration apart must not alias into
	// the same cell.
	b.record(Batch, 0, now.Add(-time.Duration(burnBuckets)*burnBucket))
	if got := b.ratio(Batch, time.Hour, now); got != 100 {
		t.Fatalf("1h ratio after ancient sample = %v, want 100", got)
	}
}

func TestControllerBurnRatios(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := New(Config{
		Slots:   2,
		Metrics: telem.NewRegistry(),
		Now:     func() time.Time { return now },
	})
	defer c.Close()

	tn, err := c.Tenants().Authorize("", "alice")
	if err != nil {
		t.Fatalf("authenticate: %v", err)
	}
	tk, err := c.Admit(context.Background(), tn, Interactive)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	defer tk.Release()

	got := c.BurnRatios()
	for _, class := range []string{"interactive", "batch"} {
		byWindow, ok := got[class]
		if !ok {
			t.Fatalf("BurnRatios missing class %q: %v", class, got)
		}
		for _, w := range burnWindows {
			if _, ok := byWindow[w.name]; !ok {
				t.Fatalf("BurnRatios[%s] missing window %q", class, w.name)
			}
		}
	}
	// The immediate grant waited 0 < 1s objective: zero burn.
	if r := got["interactive"]["5m"]; r != 0 {
		t.Fatalf("interactive 5m burn = %v, want 0", r)
	}
	// Stats carries the same map for /varz.
	if s := c.Stats(); s.SLOBurn == nil || s.SLOBurn["interactive"] == nil {
		t.Fatalf("Stats().SLOBurn missing: %+v", s.SLOBurn)
	}
}
