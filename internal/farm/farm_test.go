package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// value wraps an int so results survive the any round-trip distinctly.
type value struct{ n int }

func mustClose(t *testing.T, f *Farm) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSubmitWait(t *testing.T) {
	f := New(Config{Workers: 2})
	defer mustClose(t, f)
	j, err := f.Submit(context.Background(), Task{
		Key:   "k",
		Label: "simple",
		Run:   func(context.Context) (any, error) { return &value{7}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.(*value).n != 7 {
		t.Fatalf("value = %+v, want 7", v)
	}
	if s := j.State(); s != Done {
		t.Fatalf("state = %v, want done", s)
	}
	view := j.View()
	if view.State != "done" || view.ID != j.ID() || view.Started == nil || view.Finished == nil {
		t.Fatalf("bad view: %+v", view)
	}
}

// TestExactlyOncePerKey is the duplicate-submission race test: many
// concurrent submissions over few distinct keys must execute each key's
// task exactly once (singleflight while in flight, LRU cache after), and
// every job must observe its key's canonical result.
func TestExactlyOncePerKey(t *testing.T) {
	f := New(Config{Workers: 4})
	defer mustClose(t, f)

	const (
		keys       = 8
		perKey     = 25
		totalSubs  = keys * perKey
		runLatency = 5 * time.Millisecond
	)
	execs := make([]atomic.Int32, keys)
	results := make([]*value, keys)
	for i := range results {
		results[i] = &value{i}
	}

	var wg sync.WaitGroup
	jobs := make([]*Job, totalSubs)
	errs := make([]error, totalSubs)
	for s := 0; s < totalSubs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			k := s % keys
			j, err := f.Submit(context.Background(), Task{
				Key:   fmt.Sprintf("key-%d", k),
				Label: fmt.Sprintf("dup-%d", k),
				Run: func(context.Context) (any, error) {
					execs[k].Add(1)
					time.Sleep(runLatency)
					return results[k], nil
				},
			})
			jobs[s], errs[s] = j, err
		}(s)
	}
	wg.Wait()

	for s, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", s, err)
		}
	}
	for s, j := range jobs {
		v, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", s, err)
		}
		if got, want := v.(*value), results[s%keys]; got != want {
			t.Fatalf("job %d got %+v, want the canonical result %+v", s, got, want)
		}
	}
	for k := range execs {
		if n := execs[k].Load(); n != 1 {
			t.Errorf("key %d executed %d times, want exactly 1", k, n)
		}
	}
	c := f.Counters()
	if c.Done != totalSubs {
		t.Errorf("done = %d, want %d", c.Done, totalSubs)
	}
	if c.Deduped+c.CacheHits != totalSubs-keys {
		t.Errorf("deduped (%d) + cache hits (%d) = %d, want %d",
			c.Deduped, c.CacheHits, c.Deduped+c.CacheHits, totalSubs-keys)
	}
}

func TestCacheHitAfterCompletion(t *testing.T) {
	f := New(Config{Workers: 1})
	defer mustClose(t, f)
	var execs atomic.Int32
	task := Task{
		Key: "k",
		Run: func(context.Context) (any, error) {
			execs.Add(1)
			return &value{1}, nil
		},
	}
	v1, err := f.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := f.Submit(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("cache served a different value")
	}
	if execs.Load() != 1 {
		t.Fatalf("execs = %d, want 1", execs.Load())
	}
	if !j2.View().CacheHit {
		t.Fatal("second job should be marked cache_hit")
	}
	if c := f.Counters(); c.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1", c.CacheHits)
	}
}

func TestRetryBackoffThenSuccess(t *testing.T) {
	f := New(Config{Workers: 1, Retries: 3, Backoff: time.Millisecond})
	defer mustClose(t, f)
	var calls atomic.Int32
	v, err := f.Do(context.Background(), Task{
		Label: "flaky",
		Run: func(context.Context) (any, error) {
			if calls.Add(1) < 3 {
				return nil, errors.New("transient")
			}
			return &value{3}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.(*value).n != 3 || calls.Load() != 3 {
		t.Fatalf("v=%+v calls=%d, want success on third attempt", v, calls.Load())
	}
	if c := f.Counters(); c.Retries != 2 {
		t.Fatalf("retries = %d, want 2", c.Retries)
	}
}

func TestRetryExhausted(t *testing.T) {
	f := New(Config{Workers: 1, Retries: 2, Backoff: time.Millisecond})
	defer mustClose(t, f)
	boom := errors.New("boom")
	var calls atomic.Int32
	j, _ := f.Submit(context.Background(), Task{
		Run: func(context.Context) (any, error) {
			calls.Add(1)
			return nil, boom
		},
	})
	_, err := j.Wait(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if j.State() != Failed {
		t.Fatalf("state = %v, want failed", j.State())
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestRetryableFilterStopsRetry(t *testing.T) {
	fatal := errors.New("fatal")
	f := New(Config{
		Workers: 1, Retries: 5, Backoff: time.Millisecond,
		Retryable: func(err error) bool { return !errors.Is(err, fatal) },
	})
	defer mustClose(t, f)
	var calls atomic.Int32
	_, err := f.Do(context.Background(), Task{
		Run: func(context.Context) (any, error) {
			calls.Add(1)
			return nil, fatal
		},
	})
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (non-retryable)", calls.Load())
	}
}

// TestGracefulDrainCompletesQueuedJobs shuts the farm down with jobs still
// queued behind a single worker and asserts every one of them ran.
func TestGracefulDrainCompletesQueuedJobs(t *testing.T) {
	f := New(Config{Workers: 1, QueueDepth: 32})
	const jobs = 10
	var ran atomic.Int32
	submitted := make([]*Job, jobs)
	for i := 0; i < jobs; i++ {
		j, err := f.Submit(context.Background(), Task{
			Label: fmt.Sprintf("drain-%d", i),
			Run: func(context.Context) (any, error) {
				time.Sleep(2 * time.Millisecond)
				ran.Add(1)
				return nil, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		submitted[i] = j
	}
	mustClose(t, f)
	if n := ran.Load(); n != jobs {
		t.Fatalf("%d of %d queued jobs ran across drain, want all", n, jobs)
	}
	for i, j := range submitted {
		if j.State() != Done {
			t.Fatalf("job %d state = %v after drain, want done", i, j.State())
		}
	}
	if _, err := f.Submit(context.Background(), Task{Run: func(context.Context) (any, error) { return nil, nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := f.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestForcedShutdownCancelsQueuedJobs expires the drain deadline while a
// job blocks the single worker; the queued jobs must complete as Canceled.
func TestForcedShutdownCancelsQueuedJobs(t *testing.T) {
	f := New(Config{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	blocker, err := f.Submit(context.Background(), Task{
		Label: "blocker",
		Run: func(ctx context.Context) (any, error) {
			select {
			case <-release:
				return &value{0}, nil
			case <-ctx.Done(): // forced shutdown cancels the farm context
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued := make([]*Job, 3)
	for i := range queued {
		queued[i], err = f.Submit(context.Background(), Task{
			Label: fmt.Sprintf("stuck-%d", i),
			Run:   func(context.Context) (any, error) { return &value{1}, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := f.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Close = %v, want deadline exceeded", err)
	}
	close(release)

	if s := blocker.State(); s != Failed {
		t.Fatalf("blocker state = %v, want failed (ctx canceled)", s)
	}
	for i, j := range queued {
		if s := j.State(); s != Canceled {
			t.Fatalf("queued job %d state = %v, want canceled", i, s)
		}
		if _, err := j.Result(); !errors.Is(err, ErrShutdown) {
			t.Fatalf("queued job %d err = %v, want ErrShutdown", i, err)
		}
	}
	if c := f.Counters(); c.Canceled != 3 {
		t.Fatalf("canceled = %d, want 3", c.Canceled)
	}
}

func TestSubmitQueueFullRespectsContext(t *testing.T) {
	f := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer func() {
		close(release)
		mustClose(t, f)
	}()
	// Occupy the worker, then fill the queue.
	if _, err := f.Submit(context.Background(), Task{Run: func(context.Context) (any, error) {
		<-release
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(context.Background(), Task{Run: func(context.Context) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.Submit(ctx, Task{Run: func(context.Context) (any, error) { return nil, nil }}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit on full queue = %v, want deadline exceeded", err)
	}
}

func TestJobsListingAndRetention(t *testing.T) {
	f := New(Config{Workers: 1, RetainDone: 3})
	defer mustClose(t, f)
	for i := 0; i < 6; i++ {
		j, err := f.Submit(context.Background(), Task{
			Label: fmt.Sprintf("job-%d", i),
			Run:   func(context.Context) (any, error) { return nil, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	jobs := f.Jobs()
	if len(jobs) > 3 {
		t.Fatalf("retained %d jobs, want <= 3", len(jobs))
	}
	// The most recent job is retained and addressable by id.
	last := jobs[len(jobs)-1]
	got, ok := f.Job(last.ID())
	if !ok || got != last {
		t.Fatalf("Job(%q) lookup failed", last.ID())
	}
}

func TestTracerRecordsLifecycleSpans(t *testing.T) {
	tr := obs.NewTracer(1024)
	f := New(Config{Workers: 1, Tracer: tr})
	if _, err := f.Do(context.Background(), Task{Key: "k", Label: "traced",
		Run: func(context.Context) (any, error) { return &value{1}, nil }}); err != nil {
		t.Fatal(err)
	}
	// A second submission of the same key is a cache hit → instant event.
	if _, err := f.Do(context.Background(), Task{Key: "k", Label: "traced",
		Run: func(context.Context) (any, error) { return &value{1}, nil }}); err != nil {
		t.Fatal(err)
	}
	mustClose(t, f)

	tracks := map[string]int{}
	for _, e := range tr.Events() {
		tracks[e.Track]++
		if e.End < e.Start {
			t.Fatalf("span %q on %q ends before it starts", e.Name, e.Track)
		}
	}
	if tracks["farm/queue"] == 0 {
		t.Fatalf("no farm/queue span recorded; tracks: %v", tracks)
	}
	if tracks["farm/worker-00"] == 0 {
		t.Fatalf("no worker span recorded; tracks: %v", tracks)
	}
	if tracks["farm/cache"] == 0 {
		t.Fatalf("no cache-hit instant recorded; tracks: %v", tracks)
	}
}

func TestCountersUtilization(t *testing.T) {
	f := New(Config{Workers: 2})
	defer mustClose(t, f)
	for i := 0; i < 4; i++ {
		if _, err := f.Do(context.Background(), Task{Run: func(context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			return nil, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	c := f.Counters()
	if c.BusySeconds <= 0 {
		t.Fatal("busy time not accounted")
	}
	if c.Utilization < 0 || c.Utilization > 1 {
		t.Fatalf("utilization = %f out of range", c.Utilization)
	}
	if c.Workers != 2 || c.Submitted != 4 || c.Done != 4 {
		t.Fatalf("counters: %+v", c)
	}
	if f.BusyTime() <= 0 {
		t.Fatal("BusyTime not accounted")
	}
}

// mapTier is an in-memory Tier for testing the second-cache-tier hookup.
type mapTier struct {
	mu   sync.Mutex
	m    map[string]any
	gets int
	puts int
}

func newMapTier() *mapTier { return &mapTier{m: map[string]any{}} }

func (t *mapTier) Get(key string) (any, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gets++
	v, ok := t.m[key]
	return v, ok
}

func (t *mapTier) Put(key string, v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.puts++
	t.m[key] = v
}

// TestTierServesAndWritesThrough pins the tier contract: a keyed job's
// result is written through after compute, a later farm (fresh memory
// cache) serves the same key from the tier without running the task, and
// tier traffic shows up in the counters and the job view.
func TestTierServesAndWritesThrough(t *testing.T) {
	tier := newMapTier()
	var runs atomic.Int32
	task := func(key string) Task {
		return Task{Key: key, Run: func(context.Context) (any, error) {
			runs.Add(1)
			return &value{42}, nil
		}}
	}

	f1 := New(Config{Workers: 1, Tier: tier})
	j, err := f1.Submit(context.Background(), task("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := j.Wait(context.Background()); err != nil || v.(*value).n != 42 {
		t.Fatalf("wait: %v, %v", v, err)
	}
	mustClose(t, f1)
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", runs.Load())
	}
	c := f1.Counters()
	if c.TierPuts != 1 || c.TierHits != 0 {
		t.Fatalf("f1 counters: tier_puts=%d tier_hits=%d", c.TierPuts, c.TierHits)
	}

	// A second farm with an empty memory cache — the tier (e.g. the durable
	// store after a restart) answers instead of the task.
	f2 := New(Config{Workers: 1, Tier: tier})
	defer mustClose(t, f2)
	j2, err := f2.Submit(context.Background(), task("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := j2.Wait(context.Background()); err != nil || v.(*value).n != 42 {
		t.Fatalf("wait: %v, %v", v, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("tier hit still ran the task (runs = %d)", runs.Load())
	}
	if got := f2.Counters(); got.TierHits != 1 {
		t.Fatalf("f2 tier_hits = %d, want 1", got.TierHits)
	}
	if view := j2.View(); !view.TierHit {
		t.Error("job view does not report tier_hit")
	}

	// Within one farm the memory LRU answers first: a repeat submission is
	// a cache hit, not more tier traffic.
	before := tier.gets
	j3, err := f2.Submit(context.Background(), task("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if view := j3.View(); !view.CacheHit && !view.Deduped {
		t.Error("repeat submission was not a memory-cache hit")
	}
	if tier.gets != before {
		t.Error("memory-cache hit still consulted the tier")
	}

	// Unkeyed jobs bypass the tier entirely.
	j4, err := f2.Submit(context.Background(), Task{Run: func(context.Context) (any, error) {
		return &value{7}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j4.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	tier.mu.Lock()
	defer tier.mu.Unlock()
	if len(tier.m) != 1 {
		t.Fatalf("tier holds %d entries, want 1 (unkeyed job leaked through)", len(tier.m))
	}
}

// TestEventRetentionCompactsTerminalJobs: a finished job's SSE replay
// ring shrinks to its terminal event once it outlives EventRetention, so
// retained jobs stop pinning their full progress history. A late
// subscriber still learns the outcome.
func TestEventRetentionCompactsTerminalJobs(t *testing.T) {
	f := New(Config{Workers: 1, EventRetention: 50 * time.Millisecond})
	defer mustClose(t, f)
	j, err := f.Submit(context.Background(), Task{
		Label: "chatty",
		Run: func(ctx context.Context) (any, error) {
			job, _ := JobFromContext(ctx)
			for i := 0; i < 20; i++ {
				job.Publish("progress", i)
			}
			return value{1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Before compaction the replay holds the progress trail.
	ch, cancel := j.Subscribe()
	n := 0
	for range ch {
		n++
	}
	cancel()
	if n < 20 {
		t.Fatalf("pre-compaction replay has %d events, want >= 20", n)
	}

	// The janitor ticks at >= 1s; well after that the ring is one event.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ch, cancel := j.Subscribe()
		n = 0
		var last Event
		for ev := range ch {
			last = ev
			n++
		}
		cancel()
		if n == 1 {
			if last.Type != "state" {
				t.Fatalf("compacted ring kept %q, want the terminal state event", last.Type)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay never compacted: still %d events", n)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestTaskTenantClassThreading: tenant, class, and admission wait set on
// the Task surface in the job's accessors, View, and span name.
func TestTaskTenantClassThreading(t *testing.T) {
	f := New(Config{Workers: 1})
	defer mustClose(t, f)
	j, err := f.Submit(context.Background(), Task{
		Label:     "tagged",
		Origin:    "r-000042",
		Tenant:    "alice",
		Class:     "interactive",
		AdmitWait: 250 * time.Millisecond,
		Run:       func(ctx context.Context) (any, error) { return value{1}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j.Tenant() != "alice" || j.Class() != "interactive" || j.AdmitWait() != 250*time.Millisecond {
		t.Errorf("accessors = %q/%q/%v", j.Tenant(), j.Class(), j.AdmitWait())
	}
	v := j.View()
	if v.Tenant != "alice" || v.Class != "interactive" || v.AdmitWaitMS != 250 {
		t.Errorf("view = %+v", v)
	}
	if got := j.spanName(); got != "tagged [r-000042] {alice/interactive}" {
		t.Errorf("span name = %q", got)
	}
}
