// Package report renders pim-render frame-anatomy profiles and experiment
// sets into a single self-contained HTML report: bandwidth timelines with
// pipeline-stage bands, per-supertile heatmaps, and side-by-side design
// comparisons. The output embeds every chart as inline SVG and carries no
// JavaScript, external images, fonts or stylesheets — one file that opens
// anywhere and can be archived next to the JSON artifacts it was built
// from.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/dtrace"
)

// Input is everything a report can include.
type Input struct {
	// Profiles are frameprofile/v1 artifacts; with two or more the report
	// opens with a side-by-side comparison (Baseline vs B-PIM vs S-TFIM
	// vs A-TFIM sweeps are the expected shape).
	Profiles []*obs.FrameProfile
	// Experiments are experiments/v1 documents (paperbench -json output),
	// rendered as tables after the profiles.
	Experiments []*obs.ExperimentSet
	// Traces are trace/v1 job timelines (pimfarm GET /v1/jobs/{id}/trace),
	// rendered as span waterfalls after the experiments.
	Traces []*dtrace.Timeline
}

const style = `body{font-family:sans-serif;margin:24px auto;max-width:900px;color:#222}
h1{font-size:22px}h2{font-size:17px;border-bottom:1px solid #ddd;padding-bottom:4px;margin-top:32px}
h3{font-size:14px;margin-bottom:6px}
table{border-collapse:collapse;font-size:12px;margin:8px 0}
td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}
th{background:#f2f2f2}td:first-child,th:first-child{text-align:left}
.meta{color:#666;font-size:12px}
.row{display:flex;flex-wrap:wrap;gap:12px;align-items:flex-start}`

// Generate writes the report for in to w.
func Generate(w io.Writer, in Input) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n<style>%s</style>\n</head><body>\n", esc(reportTitle(in)), style)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(reportTitle(in)))
	fmt.Fprintf(&b, `<p class="meta">pimreport %s (%s) &#183; %d profile(s), %d experiment set(s), %d trace(s)</p>`+"\n",
		esc(obs.Version()), esc(obs.GoVersion()), len(in.Profiles), len(in.Experiments), len(in.Traces))

	if len(in.Profiles) > 1 {
		writeComparison(&b, in.Profiles)
	}
	for _, p := range in.Profiles {
		writeProfile(&b, p)
	}
	for _, set := range in.Experiments {
		writeExperimentSet(&b, set)
	}
	for _, tl := range in.Traces {
		writeTrace(&b, tl)
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func reportTitle(in Input) string {
	if len(in.Profiles) == 1 {
		p := in.Profiles[0]
		return fmt.Sprintf("Frame anatomy: %s / %s", p.Workload, p.Design)
	}
	if len(in.Profiles) > 1 {
		return "Frame anatomy comparison"
	}
	if len(in.Profiles) == 0 && len(in.Experiments) == 0 && len(in.Traces) > 0 {
		return "Job trace timelines"
	}
	return "pim-render report"
}

// profileLabel distinguishes profiles in comparison views: designs alone
// when the workload is shared, workload/design otherwise.
func profileLabel(p *obs.FrameProfile, sharedWorkload bool) string {
	if sharedWorkload {
		return p.Design
	}
	return p.Workload + " / " + p.Design
}

// writeComparison renders side-by-side headline bars across profiles.
func writeComparison(b *strings.Builder, profiles []*obs.FrameProfile) {
	shared := true
	for _, p := range profiles[1:] {
		if p.Workload != profiles[0].Workload {
			shared = false
		}
	}
	var labels []string
	var cycles, traffic, fetches []float64
	for _, p := range profiles {
		if len(p.Frames) == 0 {
			continue
		}
		var cyc, offchip, fet float64
		for _, f := range p.Frames {
			cyc += float64(f.Cycles)
			for _, g := range f.Groups {
				offchip += float64(g.OffChipBytes)
				fet += float64(g.TexelFetches)
			}
		}
		labels = append(labels, profileLabel(p, shared))
		cycles = append(cycles, cyc)
		traffic = append(traffic, offchip)
		fetches = append(fetches, fet)
	}
	if len(labels) < 2 {
		return
	}
	b.WriteString("<h2>Design comparison</h2>\n<div class=\"row\">\n")
	barChart(b, "Render time", "cycles", labels, cycles, nil)
	barChart(b, "Fragment-stage off-chip traffic", "bytes", labels, traffic, nil)
	barChart(b, "Texel fetches", "", labels, fetches, nil)
	b.WriteString("</div>\n")
}

// meterFamily collapses per-instance meter names into plottable families:
// every vault TSV sums into one "vaults" line, every DRAM channel into one
// bus line, and multi-cube prefixes fold into their cube-local name.
func meterFamily(name string) string {
	if strings.HasPrefix(name, "cube") {
		if i := strings.Index(name, "."); i > 0 {
			name = name[i+1:]
		}
	}
	if strings.HasPrefix(name, "hmc.vault") {
		return "hmc vaults (tsv)"
	}
	if strings.HasPrefix(name, "dram.ch") {
		return "dram bus"
	}
	return strings.ReplaceAll(name, ".", " ")
}

// familySeries aggregates a frame's merged timelines into per-family
// bytes-per-cycle series (at the paper's 1 GHz GPU clock, bytes/cycle
// reads directly as GB/s).
func familySeries(f *obs.FrameAnatomy) []series {
	type agg struct {
		bytes []float64
		w     float64
	}
	fams := map[string]*agg{}
	for i := range f.Timelines {
		t := &f.Timelines[i]
		if t.Empty() {
			continue
		}
		fam := meterFamily(t.Meter)
		a, ok := fams[fam]
		if !ok {
			a = &agg{bytes: make([]float64, len(t.Bytes)), w: t.BucketCycles()}
			fams[fam] = a
		}
		for j, v := range t.Bytes {
			if j < len(a.bytes) {
				a.bytes[j] += v
			}
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]series, 0, len(names))
	for _, n := range names {
		a := fams[n]
		vals := make([]float64, len(a.bytes))
		if a.w > 0 {
			for i, v := range a.bytes {
				vals[i] = v / a.w
			}
		}
		out = append(out, series{name: n, values: vals})
	}
	return out
}

func writeProfile(b *strings.Builder, p *obs.FrameProfile) {
	fmt.Fprintf(b, "<h2>%s / %s</h2>\n", esc(p.Workload), esc(p.Design))
	prov := fmt.Sprintf("schema %s &#183; sim version %s", esc(p.Schema), esc(p.SimVersion))
	if p.Build != nil {
		prov += fmt.Sprintf(" &#183; built with %s (%s)", esc(p.Build.GoVersion), esc(p.Build.Version))
	}
	fmt.Fprintf(b, `<p class="meta">%s</p>`+"\n", prov)
	for i := range p.Frames {
		writeFrame(b, &p.Frames[i], len(p.Frames) > 1)
	}
}

func writeFrame(b *strings.Builder, f *obs.FrameAnatomy, multi bool) {
	if multi {
		fmt.Fprintf(b, "<h3>Frame %d &#8212; %dx%d, %s cycles</h3>\n", f.Frame, f.Width, f.Height, esc(fnum(float64(f.Cycles))))
	} else {
		fmt.Fprintf(b, "<h3>%dx%d, %s cycles</h3>\n", f.Width, f.Height, esc(fnum(float64(f.Cycles))))
	}

	// Bandwidth timelines with the pipeline stages as background bands.
	sers := familySeries(f)
	if len(sers) > 0 {
		var bands []band
		for _, s := range f.Stages {
			bands = append(bands, band{label: s.Name, start: float64(s.Start), end: float64(s.End)})
		}
		timelineChart(b, sers, bands, float64(f.Cycles), "bytes/cycle")
	}

	// Supertile heatmaps: where the frame's time, shading and traffic went.
	if len(f.Groups) > 0 {
		cellOf := func(get func(*obs.GroupProfile) float64) []heatCell {
			cells := make([]heatCell, 0, len(f.Groups))
			for i := range f.Groups {
				g := &f.Groups[i]
				cells = append(cells, heatCell{x: g.X, y: g.Y, value: get(g)})
			}
			return cells
		}
		b.WriteString("<div class=\"row\">\n")
		heatmap(b, "cycles", cellOf(func(g *obs.GroupProfile) float64 { return float64(g.Cycles()) }), f.Width, f.Height, f.GroupPx, nil)
		heatmap(b, "fragments", cellOf(func(g *obs.GroupProfile) float64 { return float64(g.Fragments) }), f.Width, f.Height, f.GroupPx, nil)
		heatmap(b, "texel fetches", cellOf(func(g *obs.GroupProfile) float64 { return float64(g.TexelFetches) }), f.Width, f.Height, f.GroupPx, nil)
		heatmap(b, "off-chip bytes", cellOf(func(g *obs.GroupProfile) float64 { return float64(g.OffChipBytes) }), f.Width, f.Height, f.GroupPx, nil)
		b.WriteString("</div>\n")
	}

	// Stage spans and the off-chip traffic breakdown.
	if len(f.Stages) > 0 {
		b.WriteString("<table><tr><th>stage</th><th>start</th><th>end</th><th>cycles</th><th>share</th></tr>\n")
		for _, s := range f.Stages {
			share := 0.0
			if f.Cycles > 0 {
				share = float64(s.End-s.Start) / float64(f.Cycles)
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%.1f%%</td></tr>\n",
				esc(s.Name), s.Start, s.End, s.End-s.Start, 100*share)
		}
		b.WriteString("</table>\n")
	}
	if len(f.TrafficBytes) > 0 {
		keys := make([]string, 0, len(f.TrafficBytes))
		var total uint64
		for k, v := range f.TrafficBytes {
			keys = append(keys, k)
			total += v
		}
		sort.Strings(keys)
		b.WriteString("<table><tr><th>traffic class</th><th>bytes</th><th>share</th></tr>\n")
		for _, k := range keys {
			v := f.TrafficBytes[k]
			fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.1f%%</td></tr>\n",
				esc(k), v, 100*float64(v)/float64(total))
		}
		fmt.Fprintf(b, "<tr><th>total</th><th>%d</th><th>100%%</th></tr>\n</table>\n", total)
	}
}

func writeExperimentSet(b *strings.Builder, set *obs.ExperimentSet) {
	title := "Experiments"
	if set.Set != "" {
		title += " — " + set.Set
	}
	fmt.Fprintf(b, "<h2>%s</h2>\n", esc(title))
	for _, e := range set.Experiments {
		name := e.Name
		if e.Title != "" {
			name = e.Title
		}
		fmt.Fprintf(b, "<h3>%s</h3>\n<table><tr>", esc(name))
		for _, c := range e.Columns {
			fmt.Fprintf(b, "<th>%s</th>", esc(c))
		}
		b.WriteString("</tr>\n")
		for _, row := range e.Rows {
			b.WriteString("<tr>")
			for _, cell := range row {
				fmt.Fprintf(b, "<td>%s</td>", esc(cell))
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
		if len(e.Summary) > 0 {
			keys := make([]string, 0, len(e.Summary))
			for k := range e.Summary {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var parts []string
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s = %s", k, fnum(e.Summary[k])))
			}
			fmt.Fprintf(b, `<p class="meta">%s</p>`+"\n", esc(strings.Join(parts, " · ")))
		}
	}
	for _, errName := range set.Errors {
		fmt.Fprintf(b, `<p class="meta">failed: %s</p>`+"\n", esc(errName))
	}
}
