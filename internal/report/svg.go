package report

// Hand-rolled SVG chart primitives. Every chart is emitted as a static,
// well-formed inline <svg> element (the CI smoke leg parses each one as
// XML), with no scripting, external fonts, or stylesheet dependencies —
// a report is one self-contained HTML file.

import (
	"fmt"
	"math"
	"strings"
)

// esc escapes text for HTML/XML element and attribute content.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// palette is an Okabe-Ito-derived categorical palette (colorblind-safe).
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#e69f00",
	"#cc79a7", "#56b4e9", "#8a6fb5", "#666666",
}

func seriesColor(i int) string { return palette[i%len(palette)] }

// fnum formats an axis/legend number compactly (1.5k, 2.3M, ...).
func fnum(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e9:
		return trimZero(fmt.Sprintf("%.1fG", v/1e9))
	case a >= 1e6:
		return trimZero(fmt.Sprintf("%.1fM", v/1e6))
	case a >= 1e3:
		return trimZero(fmt.Sprintf("%.1fk", v/1e3))
	case a >= 10 || a == math.Trunc(a):
		return trimZero(fmt.Sprintf("%.1f", v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func trimZero(s string) string {
	if i := strings.Index(s, ".0"); i >= 0 && (i+2 == len(s) || !isDigit(s[i+2])) {
		return s[:i] + s[i+2:]
	}
	return s
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// niceCeil rounds v up to a 1/2/5 x 10^n bound (chart axis maximum).
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	frac := v / base
	switch {
	case frac <= 1:
		return base
	case frac <= 2:
		return 2 * base
	case frac <= 5:
		return 5 * base
	default:
		return 10 * base
	}
}

// series is one named line on a timeline chart.
type series struct {
	name   string
	values []float64 // one value per bucket
}

// band is a shaded background span (pipeline stage) on a timeline chart.
type band struct {
	label      string
	start, end float64 // cycle coordinates
}

// timelineChart renders layered line series over [0, endCycle) with stage
// bands, a y-axis in the given unit, and a legend.
func timelineChart(b *strings.Builder, sers []series, bands []band, endCycle float64, unit string) {
	const (
		w, h           = 820.0, 240.0
		ml, mr, mt, mb = 64.0, 14.0, 22.0, 30.0
	)
	pw, ph := w-ml-mr, h-mt-mb
	legendRows := (len(sers) + 3) / 4
	totalH := h + float64(legendRows)*16

	var ymax float64
	for _, s := range sers {
		for _, v := range s.values {
			if v > ymax {
				ymax = v
			}
		}
	}
	ymax = niceCeil(ymax)
	if endCycle <= 0 {
		endCycle = 1
	}
	xOf := func(cyc float64) float64 { return ml + pw*cyc/endCycle }
	yOf := func(v float64) float64 { return mt + ph*(1-v/ymax) }

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %g %g" width="%g" height="%g" font-family="sans-serif" font-size="11">`,
		w, totalH, w, totalH)

	// Stage bands (alternating shade) with labels above the plot.
	for i, bd := range bands {
		x0, x1 := xOf(bd.start), xOf(bd.end)
		if x1 <= x0 {
			continue
		}
		if i%2 == 1 {
			fmt.Fprintf(b, `<rect x="%.1f" y="%g" width="%.1f" height="%g" fill="#000000" opacity="0.05"/>`,
				x0, mt, x1-x0, ph)
		}
		if x1-x0 > 28 {
			fmt.Fprintf(b, `<text x="%.1f" y="%g" text-anchor="middle" fill="#555555" font-size="10">%s</text>`,
				(x0+x1)/2, mt-8, esc(bd.label))
		}
	}

	// Axes and gridlines.
	fmt.Fprintf(b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#999999"/>`, ml, mt, pw, ph)
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		y := yOf(v)
		if i > 0 && i < 4 {
			fmt.Fprintf(b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#dddddd"/>`, ml, y, ml+pw, y)
		}
		fmt.Fprintf(b, `<text x="%g" y="%.1f" text-anchor="end" fill="#333333">%s</text>`, ml-6, y+4, esc(fnum(v)))
	}
	for i := 0; i <= 4; i++ {
		cyc := endCycle * float64(i) / 4
		x := xOf(cyc)
		fmt.Fprintf(b, `<text x="%.1f" y="%g" text-anchor="middle" fill="#333333">%s</text>`, x, mt+ph+14, esc(fnum(cyc)))
	}
	fmt.Fprintf(b, `<text x="%g" y="%g" text-anchor="middle" fill="#333333">cycles</text>`, ml+pw/2, mt+ph+27)
	fmt.Fprintf(b, `<text x="14" y="%g" text-anchor="middle" fill="#333333" transform="rotate(-90 14 %g)">%s</text>`,
		mt+ph/2, mt+ph/2, esc(unit))

	// One polyline per series.
	for si, s := range sers {
		if len(s.values) == 0 {
			continue
		}
		var pts strings.Builder
		bw := endCycle / float64(len(s.values))
		for i, v := range s.values {
			x := xOf((float64(i) + 0.5) * bw)
			fmt.Fprintf(&pts, "%.1f,%.1f ", x, yOf(v))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
			strings.TrimSpace(pts.String()), seriesColor(si))
	}

	// Legend rows under the plot.
	for si, s := range sers {
		lx := ml + float64(si%4)*190
		ly := h - 4 + float64(si/4)*16
		fmt.Fprintf(b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`, lx, ly, seriesColor(si))
		fmt.Fprintf(b, `<text x="%g" y="%g" fill="#333333">%s</text>`, lx+14, ly+9, esc(s.name))
	}
	b.WriteString("</svg>\n")
}

// rampColor maps t in [0,1] onto a light-to-dark blue ramp.
func rampColor(t float64) string {
	if math.IsNaN(t) || t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lerp := func(a, b int) int { return a + int(t*float64(b-a)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(0xef, 0x08), lerp(0xf6, 0x30), lerp(0xff, 0x6b))
}

// heatCell is one supertile group's value for a heatmap.
type heatCell struct {
	x, y  int // pixel origin
	value float64
}

// heatmap renders a supertile grid of width x height pixels with cellPx
// cells, colored by value on the blue ramp, with a max legend.
func heatmap(b *strings.Builder, title string, cells []heatCell, width, height, cellPx int, format func(float64) string) {
	if cellPx <= 0 {
		cellPx = 64
	}
	gx := (width + cellPx - 1) / cellPx
	gy := (height + cellPx - 1) / cellPx
	if gx <= 0 || gy <= 0 {
		return
	}
	// Cell edge in screen units: keep a map at most ~200px wide.
	edge := 200.0 / float64(gx)
	if edge > 26 {
		edge = 26
	}
	if edge < 4 {
		edge = 4
	}
	w := float64(gx)*edge + 2
	h := float64(gy)*edge + 36

	var vmax float64
	for _, c := range cells {
		if c.value > vmax {
			vmax = c.value
		}
	}

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %.1f %.1f" width="%.1f" height="%.1f" font-family="sans-serif" font-size="10">`,
		w, h, w, h)
	fmt.Fprintf(b, `<text x="1" y="11" fill="#333333">%s</text>`, esc(title))
	// Empty groups (no cell) keep the page background: only occupied
	// groups are drawn, mirroring the fixed non-empty group list.
	for _, c := range cells {
		cx := float64(c.x/cellPx) * edge
		cy := float64(c.y/cellPx)*edge + 16
		t := 0.0
		if vmax > 0 {
			t = c.value / vmax
		}
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#ffffff" stroke-width="0.5"/>`,
			cx, cy, edge, edge, rampColor(t))
	}
	label := fnum(vmax)
	if format != nil {
		label = format(vmax)
	}
	fmt.Fprintf(b, `<text x="1" y="%.1f" fill="#555555">max %s</text>`, h-4, esc(label))
	b.WriteString("</svg>\n")
}

// barChart renders horizontal labeled bars (design comparisons).
func barChart(b *strings.Builder, title, unit string, labels []string, values []float64, format func(float64) string) {
	if len(labels) == 0 {
		return
	}
	const (
		w      = 420.0
		ml     = 150.0
		rowH   = 22.0
		mt, mb = 20.0, 6.0
	)
	pw := w - ml - 60
	h := mt + rowH*float64(len(labels)) + mb
	var vmax float64
	for _, v := range values {
		if v > vmax {
			vmax = v
		}
	}
	if vmax <= 0 {
		vmax = 1
	}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %g %.1f" width="%g" height="%.1f" font-family="sans-serif" font-size="11">`,
		w, h, w, h)
	fmt.Fprintf(b, `<text x="1" y="12" fill="#333333" font-weight="bold">%s</text>`, esc(title+unitSuffix(unit)))
	for i, v := range values {
		y := mt + rowH*float64(i)
		bw := pw * v / vmax
		fmt.Fprintf(b, `<text x="%g" y="%.1f" text-anchor="end" fill="#333333">%s</text>`, ml-6, y+14, esc(labels[i]))
		fmt.Fprintf(b, `<rect x="%g" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`, ml, y+3, bw, rowH-7, seriesColor(i))
		label := fnum(v)
		if format != nil {
			label = format(v)
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" fill="#333333">%s</text>`, ml+bw+5, y+14, esc(label))
	}
	b.WriteString("</svg>\n")
}

func unitSuffix(unit string) string {
	if unit == "" {
		return ""
	}
	return " (" + unit + ")"
}
