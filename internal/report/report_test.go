package report

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/dtrace"
)

var update = flag.Bool("update", false, "rewrite the golden report fixture")

func loadProfile(t *testing.T, name string) *obs.FrameProfile {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := obs.ReadFrameProfile(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func fixtureInput(t *testing.T) Input {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "experiments_fixture.json"))
	if err != nil {
		t.Fatal(err)
	}
	var set obs.ExperimentSet
	if err := json.Unmarshal(data, &set); err != nil {
		t.Fatal(err)
	}
	return Input{
		Profiles: []*obs.FrameProfile{
			loadProfile(t, "profile_fixture.json"),
			loadProfile(t, "profile_fixture_atfim.json"),
		},
		Experiments: []*obs.ExperimentSet{&set},
	}
}

// volatileMeta is the one run-dependent line in a report (the generating
// binary's own version); the golden comparison masks it.
var volatileMeta = regexp.MustCompile(`<p class="meta">pimreport [^<]*</p>`)

func render(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Generate(&buf, fixtureInput(t)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestGoldenReport pins the full rendered document (modulo the generator's
// own version line) against the committed fixture. Regenerate with
// `go test ./internal/report -run TestGoldenReport -update`.
func TestGoldenReport(t *testing.T) {
	got := volatileMeta.ReplaceAllString(render(t), "<p class=\"meta\">pimreport VERSION</p>")
	golden := filepath.Join("testdata", "golden_report.html")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("report differs from golden fixture (len %d vs %d); run with -update after intentional changes",
			len(got), len(want))
	}
}

var svgBlock = regexp.MustCompile(`(?s)<svg.*?</svg>`)

// TestEverySVGIsWellFormed: each inline chart must parse as standalone XML
// and actually contain drawing elements (the CI smoke criterion).
func TestEverySVGIsWellFormed(t *testing.T) {
	html := render(t)
	svgs := svgBlock.FindAllString(html, -1)
	if len(svgs) < 5 {
		t.Fatalf("found %d SVG blocks, want >= 5 (comparison bars + 2 timelines + heatmaps)", len(svgs))
	}
	for i, s := range svgs {
		var node struct{}
		if err := xml.Unmarshal([]byte(s), &node); err != nil {
			t.Fatalf("svg %d is not well-formed XML: %v\n%s", i, err, s[:min(200, len(s))])
		}
		if !strings.Contains(s, "<rect") && !strings.Contains(s, "<polyline") {
			t.Fatalf("svg %d has no drawing elements", i)
		}
	}
}

// TestReportSelfContained: no scripts, no external references.
func TestReportSelfContained(t *testing.T) {
	html := render(t)
	if strings.Contains(html, "<script") {
		t.Fatal("report contains a script")
	}
	stripped := strings.ReplaceAll(html, `xmlns="http://www.w3.org/2000/svg"`, "")
	for _, bad := range []string{"http://", "https://", "<img", "<link", "@import"} {
		if strings.Contains(stripped, bad) {
			t.Fatalf("report references an external resource (%q)", bad)
		}
	}
	for _, needle := range []string{
		"Design comparison", "doom3-320x240", "B-PIM", "A-TFIM",
		"hmc link tx", "hmc vaults (tsv)", "texel fetches",
		"Fig 10: texture filtering speedup", "sim version 2",
	} {
		if !strings.Contains(html, needle) {
			t.Fatalf("report is missing %q", needle)
		}
	}
}

// TestTraceWaterfall: a trace/v1 timeline renders as a well-formed span
// chart with both process tracks, every span bar, and the skew note.
func TestTraceWaterfall(t *testing.T) {
	tl := &dtrace.Timeline{
		Schema:  dtrace.TimelineSchema,
		TraceID: "a3f2c1d4e5b6a7f8a3f2c1d4e5b6a7f8",
		JobID:   "job-0001",
		Label:   "doom3/atfim 320x240",
		Tenant:  "alice",
		Class:   "interactive",
		Worker:  "worker-1",
		SkewUS:  -1250,
		TraceEvents: []obs.ChromeEvent{
			{Name: "job", Ph: "X", Ts: 0, Dur: 5000, Pid: 1, Tid: 1},
			{Name: "admit", Ph: "X", Ts: 0, Dur: 200, Pid: 1, Tid: 1},
			{Name: "dist/lease", Ph: "X", Ts: 500, Dur: 4200, Pid: 1, Tid: 1},
			{Name: "run", Ph: "X", Ts: 800, Dur: 3500, Pid: 2, Tid: 1},
			{Name: "simulate/raster", Ph: "X", Ts: 1000, Dur: 2000, Pid: 2, Tid: 1},
			{Name: "meta", Ph: "M", Pid: 1, Tid: 0}, // non-X events are skipped
		},
	}
	var buf bytes.Buffer
	if err := Generate(&buf, Input{Traces: []*dtrace.Timeline{tl}}); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, needle := range []string{
		"Job trace", "doom3/atfim 320x240", "job-0001", "worker worker-1",
		"coordinator", "dist/lease", "simulate/raster", "skew",
	} {
		if !strings.Contains(html, needle) {
			t.Fatalf("trace report missing %q", needle)
		}
	}
	svgs := svgBlock.FindAllString(html, -1)
	if len(svgs) != 1 {
		t.Fatalf("found %d SVG blocks, want 1", len(svgs))
	}
	var node struct{}
	if err := xml.Unmarshal([]byte(svgs[0]), &node); err != nil {
		t.Fatalf("waterfall SVG is not well-formed XML: %v", err)
	}
	// 5 X events → 5 bars; the M event contributes none.
	if got := strings.Count(svgs[0], "<rect"); got != 5 {
		t.Fatalf("waterfall has %d bars, want 5", got)
	}
	if strings.Contains(html, "<script") {
		t.Fatal("trace report contains a script")
	}

	// An empty timeline degrades to a note, not a broken chart.
	buf.Reset()
	if err := Generate(&buf, Input{Traces: []*dtrace.Timeline{{Schema: dtrace.TimelineSchema, JobID: "job-2"}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans recorded") {
		t.Fatal("empty timeline should render a no-spans note")
	}
}

func TestMeterFamily(t *testing.T) {
	cases := map[string]string{
		"hmc.link.tx":           "hmc link tx",
		"hmc.vault07.tsv":       "hmc vaults (tsv)",
		"cube3.hmc.link.rx":     "hmc link rx",
		"cube0.hmc.vault00.tsv": "hmc vaults (tsv)",
		"dram.ch05.bus":         "dram bus",
	}
	for in, want := range cases {
		if got := meterFamily(in); got != want {
			t.Errorf("meterFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{0: 1, 0.7: 1, 1.2: 2, 3: 5, 7: 10, 42: 50, 99: 100, 120: 200}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestRampColorBounds(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.5, 1, 2} {
		c := rampColor(v)
		if len(c) != 7 || c[0] != '#' {
			t.Fatalf("rampColor(%v) = %q", v, c)
		}
	}
	if rampColor(0) != "#eff6ff" {
		t.Fatalf("ramp start %q", rampColor(0))
	}
	if rampColor(1) != "#08306b" {
		t.Fatalf("ramp end %q", rampColor(1))
	}
}
