package report

// Distributed-trace waterfall rendering: one pim-render/trace/v1 timeline
// (GET /v1/jobs/{id}/trace) becomes a horizontal span chart — coordinator
// spans on top, worker spans below, one bar per complete event, laid out
// on the skew-corrected microsecond axis the assembler produced. The same
// no-JS inline-SVG discipline as every other chart in this package.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/dtrace"
)

// traceTrackName labels the two process tracks of an assembled timeline.
func traceTrackName(pid int) string {
	switch pid {
	case 1:
		return "coordinator"
	case 2:
		return "worker"
	default:
		return fmt.Sprintf("pid %d", pid)
	}
}

// traceSpanColor keys bar color off the span family so related spans read
// as one visual group (all simulate stages share a hue, wire spans
// another) regardless of row order.
func traceSpanColor(name string) string {
	switch {
	case name == "job":
		return palette[7] // neutral grey root
	case strings.HasPrefix(name, "wire/"):
		return palette[3]
	case strings.HasPrefix(name, "simulate/"):
		return palette[2]
	case strings.HasPrefix(name, "dist/"):
		return palette[1]
	case name == "run":
		return palette[0]
	default:
		return palette[5]
	}
}

// writeTrace renders one job timeline: header with identity and skew,
// then the span waterfall.
func writeTrace(b *strings.Builder, tl *dtrace.Timeline) {
	title := "Job trace"
	if tl.Label != "" {
		title += " — " + tl.Label
	}
	fmt.Fprintf(b, "<h2>%s</h2>\n", esc(title))
	meta := fmt.Sprintf("trace %s &#183; job %s", esc(tl.TraceID), esc(tl.JobID))
	if tl.Worker != "" {
		meta += " &#183; worker " + esc(tl.Worker)
	}
	if tl.Tenant != "" {
		meta += " &#183; tenant " + esc(tl.Tenant)
	}
	if tl.Class != "" {
		meta += " &#183; class " + esc(tl.Class)
	}
	if tl.SkewUS != 0 {
		meta += fmt.Sprintf(" &#183; clock skew %s&#181;s corrected", esc(fnum(float64(tl.SkewUS))))
	}
	if tl.DroppedSpans > 0 {
		meta += fmt.Sprintf(" &#183; %d spans dropped at cap", tl.DroppedSpans)
	}
	fmt.Fprintf(b, `<p class="meta">%s</p>`+"\n", meta)
	traceWaterfall(b, tl.TraceEvents)
}

// traceWaterfall lays complete ("X") events out as one bar per row,
// grouped by process track and ordered by start time within each.
func traceWaterfall(b *strings.Builder, events []obs.ChromeEvent) {
	var spans []obs.ChromeEvent
	for _, ev := range events {
		if ev.Ph == "X" {
			spans = append(spans, ev)
		}
	}
	if len(spans) == 0 {
		b.WriteString(`<p class="meta">no spans recorded</p>` + "\n")
		return
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Pid != spans[j].Pid {
			return spans[i].Pid < spans[j].Pid
		}
		if spans[i].Ts != spans[j].Ts {
			return spans[i].Ts < spans[j].Ts
		}
		return spans[i].Dur > spans[j].Dur
	})
	var endUS float64
	for _, ev := range spans {
		if end := float64(ev.Ts + ev.Dur); end > endUS {
			endUS = end
		}
	}
	if endUS <= 0 {
		endUS = 1
	}

	const (
		w    = 820.0
		ml   = 150.0
		mr   = 14.0
		mt   = 18.0
		mb   = 30.0
		rowH = 16.0
	)
	pw := w - ml - mr
	h := mt + rowH*float64(len(spans)) + mb
	xOf := func(us float64) float64 { return ml + pw*us/endUS }

	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %g %.1f" width="%g" height="%.1f" font-family="sans-serif" font-size="10">`,
		w, h, w, h)

	// Time gridlines in milliseconds.
	for i := 0; i <= 4; i++ {
		us := endUS * float64(i) / 4
		x := xOf(us)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%g" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`, x, mt, x, h-mb)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#333333">%s</text>`, x, h-mb+12, esc(fnum(us/1000)))
	}
	fmt.Fprintf(b, `<text x="%g" y="%.1f" text-anchor="middle" fill="#333333">ms since trace start</text>`, ml+pw/2, h-mb+25)

	// Track separators: a label at each pid's first row.
	lastPid := -1
	for i, ev := range spans {
		y := mt + rowH*float64(i)
		if ev.Pid != lastPid {
			lastPid = ev.Pid
			fmt.Fprintf(b, `<text x="1" y="%.1f" fill="#555555" font-weight="bold">%s</text>`, y+rowH-4, esc(traceTrackName(ev.Pid)))
			if i > 0 {
				fmt.Fprintf(b, `<line x1="1" y1="%.1f" x2="%g" y2="%.1f" stroke="#cccccc"/>`, y, w-mr, y)
			}
		}
		x0 := xOf(float64(ev.Ts))
		bw := pw * float64(ev.Dur) / endUS
		if bw < 1 {
			bw = 1
		}
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" opacity="0.85"/>`,
			x0, y+2, bw, rowH-4, traceSpanColor(ev.Name))
		label := fmt.Sprintf("%s %sms", ev.Name, fnum(float64(ev.Dur)/1000))
		// Put the label inside wide bars, after narrow ones; flip to the
		// left side when a right-edge bar would push the text off-canvas.
		lx, anchor := x0+bw+4, "start"
		if bw > 160 {
			lx, anchor = x0+4, "start"
		} else if x0+bw > ml+pw-170 {
			lx, anchor = x0-4, "end"
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="%s" fill="#333333">%s</text>`,
			lx, y+rowH-4, anchor, esc(label))
	}
	b.WriteString("</svg>\n")
}
