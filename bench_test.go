// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section VII) plus the ablations called out in DESIGN.md.
// Each benchmark regenerates its experiment and reports the headline
// metrics through testing.B metrics, printing the full table once under
// -v. Run with:
//
//	go test -bench=. -benchmem            # quick workload set
//	go test -bench=. -benchmem -short     # mini set (fast)
package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

func benchSet(b *testing.B) []repro.WorkloadSpec {
	if testing.Short() {
		return repro.MiniSet()
	}
	return repro.QuickSet()
}

// runExperimentBench runs one experiment per iteration (results are
// memoized after the first pass, so b.N loops stay cheap) and reports its
// summary metrics.
func runExperimentBench(b *testing.B, name string, metrics ...string) {
	wls := benchSet(b)
	var exp *repro.Experiment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		exp, err = repro.Registry().Run(context.Background(), name, wls)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, m := range metrics {
		if v, ok := exp.Summary[m]; ok {
			b.ReportMetric(v, m)
		}
	}
	b.Log("\n" + exp.Table.String())
}

func BenchmarkTable1Config(b *testing.B)    { runExperimentBench(b, "table1") }
func BenchmarkTable2Workloads(b *testing.B) { runExperimentBench(b, "table2") }

func BenchmarkFig02MemoryBreakdown(b *testing.B) {
	runExperimentBench(b, "fig2", "avg_texture_share")
}

func BenchmarkFig04AnisoOff(b *testing.B) {
	runExperimentBench(b, "fig4", "avg_filter_speedup", "avg_traffic_normalized")
}

func BenchmarkFig05BPIM(b *testing.B) {
	runExperimentBench(b, "fig5", "avg_render_speedup", "avg_filter_speedup")
}

func BenchmarkFig07TexelFetches(b *testing.B) {
	runExperimentBench(b, "fig7", "baseline_fetches_4x", "atfim_fetches_4x")
}

func BenchmarkFig10TextureSpeedup(b *testing.B) {
	runExperimentBench(b, "fig10", "avg_speedup_atfim", "max_speedup_atfim", "avg_speedup_bpim")
}

func BenchmarkFig11RenderSpeedup(b *testing.B) {
	runExperimentBench(b, "fig11", "avg_speedup_atfim", "max_speedup_atfim", "avg_speedup_bpim")
}

func BenchmarkFig12MemoryTraffic(b *testing.B) {
	runExperimentBench(b, "fig12", "avg_traffic_stfim", "avg_traffic_atfim001", "avg_traffic_atfim005")
}

func BenchmarkFig13Energy(b *testing.B) {
	runExperimentBench(b, "fig13", "avg_energy_atfim", "avg_energy_bpim")
}

func BenchmarkFig14ThresholdSpeedup(b *testing.B) {
	runExperimentBench(b, "fig14", "avg_A-TFIM-001pi", "avg_A-TFIM-no")
}

func BenchmarkFig15ThresholdQuality(b *testing.B) {
	runExperimentBench(b, "fig15", "avg_A-TFIM-001pi", "avg_A-TFIM-no")
}

func BenchmarkFig16Tradeoff(b *testing.B) {
	runExperimentBench(b, "fig16", "speedup_A-TFIM-001pi", "psnr_A-TFIM-001pi")
}

func BenchmarkOverheadAnalysis(b *testing.B) {
	runExperimentBench(b, "overhead", "ptb_kb", "hmc_fraction", "gpu_fraction")
}

// --- Ablation benches (DESIGN.md section 7) ---

func ablationWorkload(b *testing.B) repro.WorkloadSpec {
	if testing.Short() {
		return workload.MustGet("doom3", 320, 240)
	}
	return workload.MustGet("doom3", 640, 480)
}

// BenchmarkAblationReorder compares A-TFIM against S-TFIM, isolating the
// contribution of the anisotropic-first reordering plus on-chip caching:
// both run filtering in memory; only A-TFIM reorders and caches parents.
func BenchmarkAblationReorder(b *testing.B) {
	wl := ablationWorkload(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		st, err := core.RunCached(wl, core.Options{Design: config.STFIM})
		if err != nil {
			b.Fatal(err)
		}
		at, err := core.RunCached(wl, core.Options{Design: config.ATFIM})
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(st.Cycles()) / float64(at.Cycles())
	}
	b.ReportMetric(speedup, "atfim_over_stfim")
}

// BenchmarkAblationAddressMap compares Morton-tiled vs linear texel
// layouts under the baseline (texture cache locality).
func BenchmarkAblationAddressMap(b *testing.B) {
	wl := ablationWorkload(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		morton, err := core.RunCached(wl, core.Options{Design: config.Baseline})
		if err != nil {
			b.Fatal(err)
		}
		linear, err := core.RunCached(wl, core.Options{Design: config.Baseline, LinearLayout: true})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(linear.TextureTraffic()) / float64(morton.TextureTraffic())
	}
	b.ReportMetric(ratio, "linear_traffic_vs_morton")
}

// BenchmarkAblationConsolidation measures the Child Texel Consolidation
// unit's effect on HMC-internal fetches.
func BenchmarkAblationConsolidation(b *testing.B) {
	wl := ablationWorkload(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		on, err := core.RunCached(wl, core.Options{Design: config.ATFIM})
		if err != nil {
			b.Fatal(err)
		}
		off, err := core.RunCached(wl, core.Options{Design: config.ATFIM, DisableConsolidation: true})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(off.Frame.Activity.InternalBytes) / float64(on.Frame.Activity.InternalBytes)
	}
	b.ReportMetric(ratio, "internal_bytes_without_consolidation")
}

// BenchmarkAblationMTUCount explores S-TFIM with shared MTUs (Section IV
// discusses reducing MTU count to save area at a contention cost).
func BenchmarkAblationMTUCount(b *testing.B) {
	wl := ablationWorkload(b)
	var slowdown float64
	for i := 0; i < b.N; i++ {
		full, err := core.RunCached(wl, core.Options{Design: config.STFIM})
		if err != nil {
			b.Fatal(err)
		}
		shared, err := core.RunCached(wl, core.Options{Design: config.STFIM, MTUs: 4})
		if err != nil {
			b.Fatal(err)
		}
		slowdown = float64(shared.Cycles()) / float64(full.Cycles())
	}
	b.ReportMetric(slowdown, "slowdown_with_4_mtus")
}

// BenchmarkAblationAngleGranularity compares the default per-line camera
// angle tag against forcing recalculation on every angle change
// (threshold ~0), quantifying what the threshold mechanism buys.
func BenchmarkAblationAngleGranularity(b *testing.B) {
	wl := ablationWorkload(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		strict, err := core.RunCached(wl, core.Options{Design: config.ATFIM, AngleThreshold: 0.001})
		if err != nil {
			b.Fatal(err)
		}
		def, err := core.RunCached(wl, core.Options{Design: config.ATFIM})
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(strict.Cycles()) / float64(def.Cycles())
	}
	b.ReportMetric(speedup, "default_over_strictest")
}

// BenchmarkAblationCompression measures fixed-rate texture block
// compression under the baseline — the orthogonal traffic-reduction
// technique of Section VIII — for comparison with A-TFIM's reduction.
func BenchmarkAblationCompression(b *testing.B) {
	wl := ablationWorkload(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		raw, err := core.RunCached(wl, core.Options{Design: config.Baseline})
		if err != nil {
			b.Fatal(err)
		}
		comp, err := core.RunCached(wl, core.Options{Design: config.Baseline, Compressed: true})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(comp.TextureTraffic()) / float64(raw.TextureTraffic())
	}
	b.ReportMetric(ratio, "compressed_traffic_vs_raw")
}

// BenchmarkAblationMultiHMC explores the Section V-E multi-HMC scenario:
// two cubes attached to one GPU, address-interleaved at texture
// granularity so each parent-texel package maps to a single cube.
func BenchmarkAblationMultiHMC(b *testing.B) {
	wl := ablationWorkload(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		one, err := core.RunCached(wl, core.Options{Design: config.ATFIM})
		if err != nil {
			b.Fatal(err)
		}
		two, err := core.RunCached(wl, core.Options{Design: config.ATFIM, HMCCubes: 2})
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(one.Cycles()) / float64(two.Cycles())
	}
	b.ReportMetric(speedup, "two_cubes_over_one")
}

// BenchmarkSimulateShards1/2/8 measure the tile-parallel frame scan: one
// uncached single-frame simulation per iteration, identical output at
// every shard count, so ns/op directly exposes the fork/join speedup
// (scripts/bench.sh records the family into BENCH_pr4.json).
func benchSimulateShards(b *testing.B, shards int) {
	wl := workload.MustGet("doom3", 640, 480)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := repro.SimulateContext(context.Background(), wl,
			repro.WithDesign(repro.Baseline),
			repro.WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateShards1(b *testing.B) { benchSimulateShards(b, 1) }
func BenchmarkSimulateShards2(b *testing.B) { benchSimulateShards(b, 2) }
func BenchmarkSimulateShards8(b *testing.B) { benchSimulateShards(b, 8) }

// BenchmarkRenderFrameBaseline and ...ATFIM give raw simulator throughput
// (wall-clock per simulated frame) for profiling the simulator itself.
func BenchmarkRenderFrameBaseline(b *testing.B) {
	wl := workload.MustGet("wolf", 320, 240)
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(wl, core.Options{Design: config.Baseline}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderFrameATFIM(b *testing.B) {
	wl := workload.MustGet("wolf", 320, 240)
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(wl, core.Options{Design: config.ATFIM}); err != nil {
			b.Fatal(err)
		}
	}
}
