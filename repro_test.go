package repro_test

import (
	"bytes"
	"context"
	"testing"

	"repro"
)

func TestWorkloadCatalog(t *testing.T) {
	if _, err := repro.Workload("doom3", 320, 240); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Workload("nope", 320, 240); err == nil {
		t.Fatal("unknown game accepted")
	}
	if len(repro.TableII()) != 10 {
		t.Fatal("Table II catalog wrong size")
	}
	if len(repro.QuickSet()) != 6 || len(repro.MiniSet()) != 3 {
		t.Fatal("workload set sizes wrong")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	wl, _ := repro.Workload("wolf", 320, 240)
	res, err := repro.Simulate(wl, repro.Options{Design: repro.ATFIM})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles() <= 0 || res.TextureTraffic() == 0 {
		t.Fatal("simulation produced no measurements")
	}
	var buf bytes.Buffer
	if err := repro.WritePNG(&buf, res.Image, wl.Width, wl.Height); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Fatal("PNG suspiciously small")
	}
}

func TestPSNRFacade(t *testing.T) {
	a := make([]uint32, 16)
	p, err := repro.PSNR(a, a)
	if err != nil || p != 99 {
		t.Fatalf("identity PSNR %g err %v", p, err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := repro.ExperimentNames()
	if len(names) != 14 {
		t.Fatalf("%d experiments registered", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate experiment %q", n)
		}
		seen[n] = true
		d, ok := repro.Registry().Get(n)
		if !ok {
			t.Fatalf("experiment %q listed but not gettable", n)
		}
		// The deprecated v1 maps wrap the registry; they must partition
		// exactly along its Static flag.
		inDynamic := repro.Experiments()[n] != nil
		inStatic := repro.StaticExperiments()[n] != nil
		if inDynamic == inStatic || inStatic != d.Static {
			t.Fatalf("experiment %q: static=%v but dynamic-map=%v static-map=%v",
				n, d.Static, inDynamic, inStatic)
		}
	}
	if _, err := repro.Registry().Run(context.Background(), "nope", nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunStaticExperiment(t *testing.T) {
	e, err := repro.Registry().Run(context.Background(), "table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Table.NumRows() == 0 {
		t.Fatal("empty Table I")
	}
}
