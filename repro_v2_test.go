package repro_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro"
)

// TestFunctionalOptions pins the v2 option surface onto the Options struct
// it configures.
func TestFunctionalOptions(t *testing.T) {
	tr := repro.NewTracer(16)
	o := repro.NewOptions(
		repro.WithDesign(repro.ATFIM),
		repro.WithShards(4),
		repro.WithAngleThreshold(repro.Angle005Pi),
		repro.WithTracer(tr),
		repro.WithFrames(2),
		repro.WithFrameIndex(7),
		repro.WithAnisoDisabled(),
		repro.WithCompression(),
		repro.WithHMCCubes(2),
		repro.WithLinearLayout(),
		repro.WithConsolidationDisabled(),
		repro.WithMTUs(8),
	)
	if o.Design != repro.ATFIM || o.Shards != 4 || o.AngleThreshold != repro.Angle005Pi {
		t.Fatalf("core options not applied: %+v", o)
	}
	if o.Trace != tr || o.Frames != 2 || o.FrameIndex != 7 {
		t.Fatalf("trace/frame options not applied: %+v", o)
	}
	if !o.DisableAniso || !o.Compressed || o.HMCCubes != 2 ||
		!o.LinearLayout || !o.DisableConsolidation || o.MTUs != 8 {
		t.Fatalf("ablation options not applied: %+v", o)
	}
	// Options carries func fields (Progress), so compare reflectively:
	// DeepEqual treats funcs as equal only when both are nil, which is
	// exactly the zero-value contract being pinned here.
	if zero := repro.NewOptions(); !reflect.DeepEqual(zero, repro.Options{}) {
		t.Fatalf("NewOptions() = %+v, want zero Options", zero)
	}
}

// TestSimulateContextCancel: a canceled context aborts the simulation and
// surfaces context.Canceled.
func TestSimulateContextCancel(t *testing.T) {
	wl, err := repro.Workload("doom3", 320, 240)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repro.SimulateContext(ctx, wl, repro.WithDesign(repro.ATFIM)); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateContext err = %v, want context.Canceled", err)
	}
}

// TestRegistry pins the v2 experiment catalog: presentation order matches
// the v1 ExperimentNames, lookup works, static entries are flagged, and
// unknown names keep the v1 error text.
func TestRegistry(t *testing.T) {
	reg := repro.Registry()
	names := reg.Names()
	v1 := repro.ExperimentNames()
	if len(names) != len(v1) {
		t.Fatalf("registry has %d names, v1 has %d", len(names), len(v1))
	}
	for i := range names {
		if names[i] != v1[i] {
			t.Fatalf("names[%d] = %q, v1 order %q", i, names[i], v1[i])
		}
	}

	d, ok := reg.Get("table1")
	if !ok || !d.Static || d.Name != "table1" {
		t.Fatalf("Get(table1) = %+v, %v", d, ok)
	}
	if d, ok := reg.Get("fig12"); !ok || d.Static {
		t.Fatalf("Get(fig12) = %+v, %v (sweeps must not be static)", d, ok)
	}
	if _, ok := reg.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}

	if _, err := reg.Run(context.Background(), "nope", nil); err == nil ||
		!strings.Contains(err.Error(), `unknown experiment "nope"`) {
		t.Fatalf("unknown-name error = %v", err)
	}

	// Static entries run without workloads or simulation.
	exp, err := reg.Run(context.Background(), "table1", nil)
	if err != nil || exp == nil || exp.Table.NumRows() == 0 {
		t.Fatalf("Run(table1) = %v, %v", exp, err)
	}
}

// TestRegistryRunCanceled: cancellation propagates into a sweep experiment
// before any simulation happens.
func TestRegistryRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := repro.Registry().Run(ctx, "fig10", repro.MiniSet())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep err = %v, want context.Canceled", err)
	}
}
